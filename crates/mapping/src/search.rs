//! Mapping search (Section IV-D, Algorithm 1).
//!
//! Enumerates every candidate `(dimension, block size, span)` assignment per
//! level — dimensions are permutations of levels onto {x, y, z, w, …},
//! block sizes come from `SizeSet = {1, 2, 4, …, 1024}` with the product
//! capped by the device, spans start as `Span(1)`/`Span(all)` — filters by
//! hard constraints, scores by satisfied soft constraints, and finally runs
//! `ControlDOP` to pull the degree of parallelism into the device's
//! `[MIN_DOP, MAX_DOP]` window by rewriting spans
//! (`Span(all) → Split(k)`, `Span(1) → Span(n)`).

use crate::collect::collect_constraints;
use crate::constraint::{ConstraintSet, SpanAllReason, Weights};
use crate::params::{Dim, LevelMapping, MappingDecision, Span};
use multidim_device::GpuSpec;
use multidim_ir::{Bindings, NestInfo, Program};
use multidim_trace as trace;

/// A candidate mapping with its score (for Figure 17's scatter and for
/// auto-tuner integration).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredMapping {
    /// The candidate.
    pub mapping: MappingDecision,
    /// Raw score (sum of satisfied soft weights).
    pub score: f64,
    /// Score normalized by the largest single soft weight (the paper's
    /// ~0–2.5 plotting range).
    pub normalized_score: f64,
    /// Degree of parallelism under the analysis extents.
    pub dop: u64,
}

/// The complete result of the mapping analysis for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Nest structure.
    pub nest: NestInfo,
    /// Collected constraints.
    pub constraints: ConstraintSet,
    /// The selected mapping (after `ControlDOP`).
    pub decision: MappingDecision,
    /// Raw score of the selected mapping (before `ControlDOP`, which does
    /// not change satisfied constraints' scoring inputs).
    pub score: f64,
    /// Normalized score.
    pub normalized_score: f64,
    /// DOP of the selected mapping after `ControlDOP`.
    pub dop: u64,
    /// Number of candidates that passed the hard filter.
    pub candidates: usize,
    /// Number of candidates rejected by a hard constraint.
    pub pruned: usize,
}

/// Record one finished analysis into an observability registry: total
/// candidates scored, total pruned by hard constraints, and a histogram
/// of the search's prune rate (pruned / enumerated).
pub fn observe_analysis(registry: &multidim_obs::Registry, analysis: &Analysis) {
    registry
        .counter(
            "mapping_candidates_total",
            "mapping candidates that passed the hard constraints, summed over searches",
        )
        .add(analysis.candidates as u64);
    registry
        .counter(
            "mapping_pruned_total",
            "mapping candidates rejected by a hard constraint, summed over searches",
        )
        .add(analysis.pruned as u64);
    let enumerated = analysis.candidates + analysis.pruned;
    if enumerated > 0 {
        registry
            .histogram(
                "mapping_prune_rate",
                "fraction of enumerated candidates pruned per search",
            )
            .record(analysis.pruned as f64 / enumerated as f64);
    }
    registry
        .histogram(
            "mapping_normalized_score",
            "normalized score of the selected mapping per search",
        )
        .record(analysis.normalized_score);
}

/// Run the full mapping analysis (the paper's *MultiDim*) on `program`.
///
/// `bindings` supplies launch sizes where known; missing symbols default to
/// 1000 (Section IV-C).
///
/// # Examples
///
/// ```
/// use multidim_ir::*;
/// use multidim_mapping::{analyze, Dim, Span};
/// use multidim_device::GpuSpec;
///
/// // sumRows: the inner (column) index must land on dimension x.
/// let mut b = ProgramBuilder::new("sumRows");
/// let r = b.sym("R");
/// let c = b.sym("C");
/// let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
/// let root = b.map(Size::sym(r), |b, row| {
///     b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
///         b.read(m, &[row.into(), col.into()])
///     })
/// });
/// let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
/// let mut bind = Bindings::new();
/// bind.bind(r, 8192);
/// bind.bind(c, 8192);
/// let analysis = analyze(&p, &bind, &GpuSpec::tesla_k20c());
/// assert!(analysis.decision.level(1).dim.is_x());
/// assert!(matches!(analysis.decision.level(1).span, Span::All | Span::Split(_)));
/// ```
pub fn analyze(program: &Program, bindings: &Bindings, gpu: &GpuSpec) -> Analysis {
    analyze_with(program, bindings, gpu, &Weights::default())
}

/// [`analyze`] with explicit soft-constraint weights.
pub fn analyze_with(
    program: &Program,
    bindings: &Bindings,
    gpu: &GpuSpec,
    weights: &Weights,
) -> Analysis {
    let mut sp = trace::span("search", "analyze");
    if let Some(s) = sp.as_mut() {
        s.arg("program", program.name.as_str());
    }
    let nest = NestInfo::of(program);
    let constraints = collect_constraints(program, &nest, bindings, gpu, weights);
    let extents = analysis_extents(&nest, bindings);

    // Tie-breaking among equal scores (the paper picks the higher DOP,
    // then randomly; we refine deterministically): (1) DOP, *saturated* at
    // the device's MIN_DOP — parallelism beyond full occupancy buys
    // nothing and would push reduce blocks to wasteful widths; (2) fewer
    // threads across synchronized (span-all/split) levels — smaller
    // shared-memory reduction trees; (3) more threads per block — fewer
    // blocks to dispatch.
    let key = |mapping: &MappingDecision| {
        let sat_dop = mapping.dop(&extents).min(gpu.min_dop());
        let sync_threads: u64 = mapping
            .levels()
            .iter()
            .filter(|l| matches!(l.span, Span::All | Span::Split(_)))
            .map(|l| l.block_size as u64)
            .product();
        // Final preference: block sizes near 256 threads (occupancy sweet
        // spot) — expressed as 64 - |log2(threads) - 8|.
        let bt = mapping.block_threads().max(1);
        let log2 = 63 - bt.leading_zeros() as i64;
        let near_256 = 64 - (log2 - 8).unsigned_abs();
        (sat_dop, u64::MAX - sync_threads, near_256)
    };

    let mut best: Option<(MappingDecision, f64, (u64, u64, u64))> = None;
    let mut candidates = 0usize;
    let pruned = for_each_candidate(&nest, &constraints, gpu, &mut |mapping| {
        candidates += 1;
        let score = constraints.score(&mapping);
        let k = key(&mapping);
        // Scores within a relative epsilon are ties (weights span many
        // orders of magnitude; micro-weights must not pre-empt the DOP
        // tie-break).
        let better = match &best {
            None => true,
            Some((_, bs, bk)) => {
                let eps = 1e-6 * bs.abs().max(score.abs()).max(1.0);
                score > bs + eps || ((score - bs).abs() <= eps && k > *bk)
            }
        };
        if trace::enabled() {
            trace::emit(
                trace::Event::instant("search", "candidate")
                    .arg("mapping", mapping.to_string())
                    .arg("score", score)
                    .arg("normalized_score", constraints.normalized_score(&mapping))
                    .arg("dop", mapping.dop(&extents))
                    .arg("leads", better),
            );
        }
        if better {
            best = Some((mapping, score, k));
        }
    });
    let (mut decision, score, _) =
        best.expect("at least one candidate must satisfy the hard constraints");

    control_dop(&mut decision, &constraints, &extents, gpu);
    let dop = decision.dop(&extents);
    let normalized_score = constraints.normalized_score(&decision);

    if trace::enabled() {
        trace::emit(
            trace::Event::instant("search", "selected")
                .arg("program", program.name.as_str())
                .arg("mapping", decision.to_string())
                .arg("score", score)
                .arg("normalized_score", normalized_score)
                .arg("dop", dop)
                .arg("candidates", candidates)
                .arg("pruned", pruned),
        );
    }
    if let Some(s) = sp.as_mut() {
        s.arg("candidates", candidates);
        s.arg("pruned", pruned);
    }

    Analysis {
        nest,
        constraints,
        decision,
        score,
        normalized_score,
        dop,
        candidates,
        pruned,
    }
}

/// Enumerate *all* hard-valid candidates with scores (Figure 17's scatter;
/// also usable by external auto-tuners per the paper's discussion).
pub fn enumerate_scored(
    program: &Program,
    bindings: &Bindings,
    gpu: &GpuSpec,
    weights: &Weights,
) -> Vec<ScoredMapping> {
    let nest = NestInfo::of(program);
    let constraints = collect_constraints(program, &nest, bindings, gpu, weights);
    let extents = analysis_extents(&nest, bindings);
    let mut out = Vec::new();
    for_each_candidate(&nest, &constraints, gpu, &mut |mapping| {
        let score = constraints.score(&mapping);
        let normalized_score = constraints.normalized_score(&mapping);
        let dop = mapping.dop(&extents);
        out.push(ScoredMapping {
            mapping,
            score,
            normalized_score,
            dop,
        });
    });
    out
}

/// Representative per-level extents under the analysis bindings.
pub fn analysis_extents(nest: &NestInfo, bindings: &Bindings) -> Vec<i64> {
    nest.levels
        .iter()
        .map(|l| l.representative_size().eval_or_default(bindings))
        .collect()
}

/// The block-size set of Algorithm 1: `{1, 2, 4, …, 1024}`.
pub fn size_set(gpu: &GpuSpec) -> Vec<u32> {
    let mut v = Vec::new();
    let mut s = 1u32;
    while s <= gpu.max_threads_per_block {
        v.push(s);
        s *= 2;
    }
    v
}

fn for_each_candidate(
    nest: &NestInfo,
    constraints: &ConstraintSet,
    gpu: &GpuSpec,
    f: &mut dyn FnMut(MappingDecision),
) -> usize {
    let mut pruned = 0usize;
    let depth = nest.depth().max(1);
    let sizes = size_set(gpu);
    let forced: Vec<Option<SpanAllReason>> = (0..depth)
        .map(|l| {
            constraints
                .span_all_levels()
                .iter()
                .find(|(lvl, _)| *lvl == l)
                .map(|(_, r)| *r)
        })
        .collect();

    let mut dims: Vec<u8> = (0..depth as u8).collect();
    permutations(&mut dims, 0, &mut |perm| {
        // perm[level] = dimension index for that level.
        let mut level_sizes = vec![1u32; depth];
        size_combos(
            &sizes,
            gpu.max_threads_per_block,
            &mut level_sizes,
            0,
            &mut |bs| {
                let mut spans = vec![Span::ONE; depth];
                span_combos(&forced, &mut spans, 0, &mut |sp| {
                    let levels: Vec<LevelMapping> = (0..depth)
                        .map(|l| LevelMapping {
                            dim: Dim(perm[l]),
                            block_size: bs[l],
                            span: sp[l],
                        })
                        .collect();
                    let mapping = MappingDecision::new(levels);
                    if trace::enabled() {
                        // Traced path: name the violated constraint so the
                        // "why was this candidate pruned" table can be built.
                        match constraints.first_violation(&mapping) {
                            None => f(mapping),
                            Some(v) => {
                                pruned += 1;
                                trace::emit(
                                    trace::Event::instant("search", "pruned")
                                        .arg("mapping", mapping.to_string())
                                        .arg("violates", v.to_string()),
                                );
                            }
                        }
                    } else if constraints.hard_ok(&mapping) {
                        f(mapping);
                    } else {
                        pruned += 1;
                    }
                });
            },
        );
    });
    pruned
}

fn permutations(items: &mut [u8], k: usize, f: &mut dyn FnMut(&[u8])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permutations(items, k + 1, f);
        items.swap(k, i);
    }
}

fn size_combos(
    sizes: &[u32],
    budget: u32,
    out: &mut Vec<u32>,
    level: usize,
    f: &mut dyn FnMut(&[u32]),
) {
    if level == out.len() {
        f(out);
        return;
    }
    for &s in sizes {
        if s > budget {
            break;
        }
        out[level] = s;
        size_combos(sizes, budget / s, out, level + 1, f);
    }
}

fn span_combos(
    forced: &[Option<SpanAllReason>],
    out: &mut Vec<Span>,
    level: usize,
    f: &mut dyn FnMut(&[Span]),
) {
    if level == forced.len() {
        f(out);
        return;
    }
    // Span(all) is tied to the levels that *require* it (synchronization /
    // dynamic extent); free levels start at Span(1) and are coarsened to
    // Span(n) by ControlDOP when the DOP overshoots. (Choosing Span(all)
    // on a free level never beats Span(1) under the scoring model, and it
    // would nest block synchronization inside non-uniform loops, which the
    // code generator rejects.)
    out[level] = if forced[level].is_some() {
        Span::All
    } else {
        Span::ONE
    };
    span_combos(forced, out, level + 1, f);
}

/// `ControlDOP` (Algorithm 1 lines 6–12): pull the mapping's DOP into
/// `[min_dop, max_dop]`.
///
/// * Too little parallelism: replace a synchronization-forced `Span(all)`
///   with `Split(k)` (a dynamic-size `Span(all)` cannot be split because
///   the chunking would depend on the unknown extent).
/// * Too much parallelism: replace a `Span(1)` with `Span(n)`.
pub fn control_dop(
    mapping: &mut MappingDecision,
    constraints: &ConstraintSet,
    extents: &[i64],
    gpu: &GpuSpec,
) {
    let min_dop = gpu.min_dop();
    let max_dop = gpu.max_dop();
    let span_reasons = constraints.span_all_levels();

    let dop = mapping.dop(extents);
    // Split pays for an extra (combiner) kernel launch; apply it only when
    // the parallelism deficit is at least 2x — below that the added
    // overhead outweighs the occupancy gain.
    if dop * 2 <= min_dop {
        let k = (min_dop as f64 / dop.max(1) as f64).ceil() as i64;
        // Prefer splitting the level with the largest extent headroom.
        let candidate = (0..mapping.depth())
            .filter(|&l| {
                matches!(mapping.level(l).span, Span::All)
                    && span_reasons
                        .iter()
                        .find(|(lvl, _)| *lvl == l)
                        .is_none_or(|(_, r)| *r == SpanAllReason::Synchronization)
            })
            .max_by_key(|&l| extents[l]);
        if let Some(l) = candidate {
            // Don't split finer than one block worth of work per section.
            let max_k = (extents[l] / mapping.level(l).block_size.max(1) as i64).max(1);
            mapping.level_mut(l).span = Span::Split(k.clamp(1, max_k));
        }
    } else if dop > max_dop {
        let n = (dop as f64 / max_dop as f64).ceil() as i64;
        let candidate = (0..mapping.depth())
            .filter(|&l| matches!(mapping.level(l).span, Span::Span(1)))
            .max_by_key(|&l| extents[l]);
        if let Some(l) = candidate {
            mapping.level_mut(l).span = Span::Span(n.max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind, Size};

    fn k20c() -> GpuSpec {
        GpuSpec::tesla_k20c()
    }

    fn sum_rows(r: i64, c: i64) -> (Program, Bindings) {
        let mut b = ProgramBuilder::new("sumRows");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(rs), |b, row| {
            b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        (p, bind)
    }

    fn sum_cols(r: i64, c: i64) -> (Program, Bindings) {
        let mut b = ProgramBuilder::new("sumCols");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(cs), |b, col| {
            b.reduce(Size::sym(rs), ReduceOp::Add, |b, row| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        (p, bind)
    }

    #[test]
    fn sum_rows_maps_inner_to_x() {
        let (p, bind) = sum_rows(8192, 8192);
        let a = analyze(&p, &bind, &k20c());
        assert!(a.decision.level(1).dim.is_x(), "decision: {}", a.decision);
        assert!(!a.decision.level(0).dim.is_x());
        assert!(a.decision.level(1).block_size.is_multiple_of(32));
    }

    #[test]
    fn sum_cols_maps_outer_to_x() {
        let (p, bind) = sum_cols(8192, 8192);
        let a = analyze(&p, &bind, &k20c());
        assert!(a.decision.level(0).dim.is_x(), "decision: {}", a.decision);
        assert!(a.decision.level(0).block_size.is_multiple_of(32));
        // Inner reduce still needs span(all)/split.
        assert!(matches!(
            a.decision.level(1).span,
            Span::All | Span::Split(_)
        ));
    }

    #[test]
    fn skewed_sum_cols_gets_enough_dop() {
        // sumCols on [64K, 1K]: only 1K outer iterations; the inner
        // span(all) must be split (or blocks enlarged) to reach MIN_DOP.
        let (p, bind) = sum_cols(65_536, 128);
        let a = analyze(&p, &bind, &k20c());
        // 512 outer iterations alone cannot reach MIN_DOP: the reduce must
        // have been split.
        assert!(
            matches!(a.decision.level(1).span, Span::Split(_)),
            "expected a split in {}",
            a.decision
        );
        assert!(
            a.dop >= k20c().min_dop() / 2,
            "dop {} far below min {} for {}",
            a.dop,
            k20c().min_dop(),
            a.decision
        );
    }

    #[test]
    fn control_dop_caps_excess() {
        // A huge 1-level map: DOP = extent = 10^9 > MAX_DOP; span(n)
        // coarsening must kick in.
        let mut b = ProgramBuilder::new("big");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| b.read(a, &[i.into()]));
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 1_000_000_000);
        let analysis = analyze(&p, &bind, &k20c());
        assert!(analysis.dop <= k20c().max_dop());
        assert!(matches!(analysis.decision.level(0).span, Span::Span(n) if n > 1));
    }

    #[test]
    fn one_level_map_prefers_x_warp_multiple() {
        let mut b = ProgramBuilder::new("saxpy");
        let n = b.sym("N");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
        let y = b.input("y", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            b.read(x, &[i.into()]) * multidim_ir::Expr::lit(2.0) + b.read(y, &[i.into()])
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 1 << 20);
        let a = analyze(&p, &bind, &k20c());
        assert!(a.decision.level(0).dim.is_x());
        assert_eq!(a.decision.level(0).block_size % 32, 0);
        assert!(a.decision.level(0).block_size >= 64);
    }

    #[test]
    fn dynamic_extent_cannot_be_split() {
        // Outer map over few items with a dynamic inner reduce: DOP is
        // low but Split is not allowed on the dynamic level.
        let mut b = ProgramBuilder::new("dyn");
        let n = b.sym("N");
        let deg = b.input("deg", ScalarKind::I32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            let d = b.read(deg, &[i.into()]);
            b.reduce_dyn(d, 64, ReduceOp::Add, |_, _| multidim_ir::Expr::lit(1.0))
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 64);
        let a = analyze(&p, &bind, &k20c());
        assert!(matches!(a.decision.level(1).span, Span::All));
    }

    #[test]
    fn enumerate_covers_search_space() {
        let (p, bind) = sum_rows(1024, 1024);
        let scored = enumerate_scored(&p, &bind, &k20c(), &Weights::default());
        // 2 dim perms × size combos (product ≤ 1024 over 2 levels = 66)
        // × spans (level 1 forced All, level 0 Span(1)).
        assert_eq!(scored.len(), 2 * 66);
        // The best scored candidate puts the inner level on x.
        let best = scored
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap();
        assert!(best.mapping.level(1).dim.is_x());
    }

    #[test]
    fn search_is_deterministic() {
        let (p, bind) = sum_rows(4096, 512);
        let a1 = analyze(&p, &bind, &k20c());
        let a2 = analyze(&p, &bind, &k20c());
        assert_eq!(a1.decision, a2.decision);
        assert_eq!(a1.score, a2.score);
    }

    #[test]
    fn size_set_is_powers_of_two() {
        let s = size_set(&k20c());
        assert_eq!(s, vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]);
    }

    #[test]
    fn traced_search_names_prune_reasons() {
        use std::rc::Rc;
        // Starve shared memory so large reduce blocks violate SmemCapacity
        // and get pruned (with a reason) instead of scored.
        let (p, bind) = sum_rows(1024, 1024);
        let gpu = GpuSpec {
            smem_per_sm: 512,
            ..k20c()
        };
        let sink = Rc::new(trace::MemorySink::new());
        let guard = trace::set_sink(sink.clone());
        let a = analyze(&p, &bind, &gpu);
        drop(guard);
        let events = sink.drain();

        let pruned: Vec<_> = events
            .iter()
            .filter(|e| e.cat == "search" && e.name == "pruned")
            .collect();
        assert!(
            !pruned.is_empty(),
            "tiny smem should prune large reduce blocks"
        );
        assert_eq!(pruned.len(), a.pruned, "analysis counts its own prunes");
        for e in &pruned {
            let why = e
                .get_str("violates")
                .expect("pruned event names its constraint");
            assert!(why.contains("smem"), "unexpected reason: {why}");
        }
        // Every surviving candidate was emitted, and the count matches the
        // analysis' own bookkeeping.
        let scored = events
            .iter()
            .filter(|e| e.cat == "search" && e.name == "candidate")
            .count();
        assert_eq!(scored, a.candidates);
        let selected = events
            .iter()
            .find(|e| e.cat == "search" && e.name == "selected")
            .expect("selected event");
        assert_eq!(selected.get_str("mapping").unwrap(), a.decision.to_string());
    }

    #[test]
    fn tracing_does_not_change_the_decision() {
        use std::rc::Rc;
        let (p, bind) = sum_rows(4096, 512);
        let untraced = analyze(&p, &bind, &k20c());
        let sink = Rc::new(trace::MemorySink::new());
        let guard = trace::set_sink(sink.clone());
        let traced = analyze(&p, &bind, &k20c());
        drop(guard);
        assert_eq!(untraced.decision, traced.decision);
        assert_eq!(untraced.candidates, traced.candidates);
        assert_eq!(untraced.pruned, traced.pruned, "both paths count prunes");
        assert_eq!(untraced.score, traced.score);
    }
}
