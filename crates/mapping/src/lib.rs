//! Locality-aware mapping analysis for nested parallel patterns on GPUs.
//!
//! This crate implements the central contribution of *Locality-Aware Mapping
//! of Nested Parallel Patterns on GPUs* (MICRO 2014):
//!
//! 1. **Mapping parameters** (Section IV-A): each nest level gets a logical
//!    [`Dim`]ension, a block size, and a [`Span`]/Split degree-of-parallelism
//!    control.
//! 2. **Constraints** (Section IV-C, Table II): hard constraints encode
//!    correctness (synchronization ⇒ `Span(all)`, device limits), soft
//!    constraints encode weighted performance hints (coalescing wants
//!    dimension x, warp-multiple blocks, minimum occupancy), with weights
//!    derived from access execution counts (Figure 8).
//! 3. **Search** (Section IV-D, Algorithm 1): brute-force enumeration of
//!    the candidate space, hard filtering, soft scoring, DOP tie-breaking,
//!    and the `ControlDOP` post-pass that rewrites spans to reach the
//!    device's `[MIN_DOP, MAX_DOP]` window.
//! 4. **Fixed strategies** (Section IV-B, Figure 7): *1D*,
//!    *thread-block/thread* and *warp-based* mappings expressed as fixed
//!    points of the same parameter space, used as evaluation baselines.
//!
//! # Examples
//!
//! ```
//! use multidim_ir::*;
//! use multidim_mapping::*;
//! use multidim_device::GpuSpec;
//!
//! // sumCols: adjacent *outer* iterations touch adjacent memory, so the
//! // analysis must give level 0 dimension x — the opposite of sumRows.
//! let mut b = ProgramBuilder::new("sumCols");
//! let r = b.sym("R");
//! let c = b.sym("C");
//! let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
//! let root = b.map(Size::sym(c), |b, col| {
//!     b.reduce(Size::sym(r), ReduceOp::Add, |b, row| {
//!         b.read(m, &[row.into(), col.into()])
//!     })
//! });
//! let p = b.finish_map(root, "sums", ScalarKind::F32).unwrap();
//! let mut bind = Bindings::new();
//! bind.bind(r, 8192);
//! bind.bind(c, 8192);
//!
//! let analysis = analyze(&p, &bind, &GpuSpec::tesla_k20c());
//! assert!(analysis.decision.level(0).dim.is_x());
//! ```

#![warn(missing_docs)]

mod collect;
mod constraint;
mod params;
mod search;
mod strategy;
mod tune;

pub use collect::collect_constraints;
pub use constraint::{
    ConstraintSet, HardConstraint, SoftConstraint, SoftKind, SpanAllReason, Weights,
};
pub use params::{Dim, LevelMapping, MappingDecision, Span};
pub use search::{
    analysis_extents, analyze, analyze_with, control_dop, enumerate_scored, observe_analysis,
    size_set, Analysis, ScoredMapping,
};
pub use strategy::{figure7_dop, fixed_mapping, Strategy};
pub use tune::{plan, select, tune, tune_pruned, Measured, TuneOptions, TunePlan, TuneResult};
