//! Empirical auto-tuning over the mapping space.
//!
//! Section IV-B: "our mapping parameters can be used by other compiler or
//! auto-tuners to explore the mapping space", and the Figure 17 discussion
//! notes the static score has false negatives that only measurement can
//! recover. This module provides that exploration: enumerate the
//! hard-valid candidates, optionally pre-filter by static score, measure
//! each with a caller-provided cost function, and return the empirically
//! best mapping.

use crate::constraint::Weights;
use crate::params::MappingDecision;
use crate::search::{enumerate_scored, ScoredMapping};
use multidim_device::GpuSpec;
use multidim_ir::{Bindings, Program};

/// Tuning configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOptions {
    /// Only measure candidates whose normalized score is at least this
    /// fraction of the best score (1.0 = only ties with the static
    /// winner; 0.0 = measure everything). Score-guided pruning trades
    /// tuning time against Figure 17's region-C false negatives.
    pub score_floor: f64,
    /// Hard cap on measured candidates (highest-scored first).
    pub max_measurements: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            score_floor: 0.0,
            max_measurements: usize::MAX,
        }
    }
}

/// One measured candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Measured {
    /// The candidate and its static score.
    pub candidate: ScoredMapping,
    /// Measured cost (seconds, or any monotone figure of merit).
    pub cost: f64,
    /// Position of the candidate in the [`TunePlan`] (score order). Cost
    /// ties are broken on this index, so selection is deterministic no
    /// matter in which order (or on which threads) measurements finished.
    pub index: usize,
}

/// The tuning outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Empirically best mapping.
    pub best: MappingDecision,
    /// Its measured cost.
    pub best_cost: f64,
    /// All measurements, sorted by cost ascending.
    pub measured: Vec<Measured>,
    /// Candidates skipped by the cost function (not executable).
    pub skipped: usize,
    /// Candidates discarded *without measurement* because a sound static
    /// lower bound already exceeded the best measured cost (only
    /// [`tune_pruned`] sets this; plain [`tune`]/[`select`] report 0).
    pub pruned: usize,
}

/// The prepared measurement list for one tuning run: hard-valid candidates
/// that survived the score floor, sorted by static score descending.
///
/// Constraint collection and candidate enumeration happen once, in
/// [`plan`]; the measurements themselves are embarrassingly parallel and
/// may run on any thread in any order — [`select`] is order-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct TunePlan {
    /// Candidates to measure, best static score first.
    pub candidates: Vec<ScoredMapping>,
}

/// Enumerate and pre-filter the candidates to measure (the serial phase of
/// tuning). Applies `options.score_floor`; `options.max_measurements`
/// caps *successful* measurements and is enforced by [`tune`]'s serial
/// loop (a parallel driver caps attempted candidates instead — see
/// `TunePlan::candidates`).
pub fn plan(
    program: &Program,
    bindings: &Bindings,
    gpu: &GpuSpec,
    weights: &Weights,
    options: &TuneOptions,
) -> TunePlan {
    let mut candidates = enumerate_scored(program, bindings, gpu, weights);
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let best_score = candidates
        .first()
        .map(|c| c.normalized_score)
        .unwrap_or(0.0);
    candidates.retain(|c| c.normalized_score >= options.score_floor * best_score);
    TunePlan { candidates }
}

/// Fold measurements back into a [`TuneResult`]. `costs[i]` is the
/// measured cost of `plan.candidates[i]` (`None` = not executable, or not
/// attempted). Ties on cost are broken by candidate index, so the outcome
/// does not depend on measurement order: serial and parallel drivers pick
/// the identical mapping.
///
/// Returns `None` when no candidate was measured.
pub fn select(plan: &TunePlan, costs: &[Option<f64>]) -> Option<TuneResult> {
    let mut measured = Vec::new();
    let mut skipped = 0usize;
    for (index, (cand, cost)) in plan.candidates.iter().zip(costs).enumerate() {
        match cost {
            Some(cost) => measured.push(Measured {
                candidate: cand.clone(),
                cost: *cost,
                index,
            }),
            None => skipped += 1,
        }
    }
    measured.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    let best = measured.first()?;
    Some(TuneResult {
        best: best.candidate.mapping.clone(),
        best_cost: best.cost,
        measured,
        skipped,
        pruned: 0,
    })
}

/// Exhaustively (or score-guided) tune `program`'s mapping with the given
/// measurement function. `measure` returns the cost of one candidate, or
/// `None` when the candidate cannot be compiled/executed.
///
/// Returns `None` when no candidate could be measured.
pub fn tune(
    program: &Program,
    bindings: &Bindings,
    gpu: &GpuSpec,
    weights: &Weights,
    options: &TuneOptions,
    mut measure: impl FnMut(&MappingDecision) -> Option<f64>,
) -> Option<TuneResult> {
    let plan = plan(program, bindings, gpu, weights, options);
    // `costs` only covers attempted candidates: `select` zips, so
    // candidates past the measurement cap count as neither measured nor
    // skipped (matching the serial semantics engine drivers rely on).
    let mut costs = Vec::new();
    let mut successes = 0usize;
    for cand in &plan.candidates {
        if successes >= options.max_measurements {
            break;
        }
        let cost = measure(&cand.mapping);
        if cost.is_some() {
            successes += 1;
        }
        costs.push(cost);
    }
    select(&plan, &costs)
}

/// Like the serial measurement loop inside [`tune`], but with a **sound
/// lower-bound pruning hook**: before measuring a candidate, `bound` may
/// return a proven lower bound on its cost (e.g. the locality analysis's
/// roofline memory floor). A candidate whose bound *strictly exceeds* the
/// best measured cost so far is discarded without measurement.
///
/// # Selection is bit-identical to the unpruned loop
///
/// The best cost only decreases over the run, so a pruned candidate's true
/// cost satisfies `cost ≥ bound > best_so_far ≥ best_final` — it can never
/// win or even tie the final selection ([`select`] breaks cost ties on
/// candidate index, and the inequality is strict). Pruned candidates *do*
/// count against `max_measurements`, mirroring the successful measurement
/// the unpruned loop would have made; the two loops can only diverge under
/// a finite cap when a pruned candidate would in fact have *failed* to
/// measure (the default cap is unbounded).
///
/// Returns `None` when no candidate was measured.
pub fn tune_pruned(
    plan: &TunePlan,
    max_measurements: usize,
    mut bound: impl FnMut(&ScoredMapping) -> Option<f64>,
    mut measure: impl FnMut(&ScoredMapping) -> Option<f64>,
) -> Option<TuneResult> {
    let mut costs: Vec<Option<f64>> = Vec::new();
    let mut successes = 0usize;
    let mut pruned = 0usize;
    let mut best_so_far = f64::INFINITY;
    for cand in &plan.candidates {
        if successes >= max_measurements {
            break;
        }
        if let Some(lb) = bound(cand) {
            if lb > best_so_far {
                pruned += 1;
                successes += 1;
                costs.push(None);
                continue;
            }
        }
        let cost = measure(cand);
        if let Some(c) = cost {
            successes += 1;
            if c < best_so_far {
                best_so_far = c;
            }
        }
        costs.push(cost);
    }
    let mut result = select(plan, &costs)?;
    // `select` counted pruned candidates as skipped (they have no cost);
    // reclassify them.
    result.skipped -= pruned;
    result.pruned = pruned;
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Span;
    use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind, Size};

    fn program() -> (Program, Bindings) {
        let mut b = ProgramBuilder::new("t");
        let r = b.sym("R");
        let c = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
        let root = b.map(Size::sym(r), |b, row| {
            b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(r, 512);
        bind.bind(c, 512);
        (p, bind)
    }

    #[test]
    fn finds_the_synthetic_optimum() {
        // Synthetic cost: block_threads distance from 128 — the tuner must
        // find a 128-thread candidate.
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        let r = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
            |m| Some((m.block_threads() as f64 - 128.0).abs()),
        )
        .unwrap();
        assert_eq!(r.best.block_threads(), 128);
        assert_eq!(r.best_cost, 0.0);
        assert!(r.measured.len() > 10);
    }

    #[test]
    fn score_floor_prunes() {
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        let full = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
            |_| Some(1.0),
        )
        .unwrap();
        let pruned = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions {
                score_floor: 0.9,
                ..Default::default()
            },
            |_| Some(1.0),
        )
        .unwrap();
        assert!(pruned.measured.len() < full.measured.len());
    }

    #[test]
    fn measurement_cap() {
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        let r = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions {
                max_measurements: 5,
                ..Default::default()
            },
            |_| Some(1.0),
        )
        .unwrap();
        assert_eq!(r.measured.len(), 5);
    }

    #[test]
    fn unmeasurable_candidates_are_skipped() {
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        let r = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
            |m| {
                // Pretend splits are not executable.
                if m.levels().iter().any(|l| matches!(l.span, Span::Split(_))) {
                    None
                } else {
                    Some(m.block_threads() as f64)
                }
            },
        )
        .unwrap();
        assert!(!r.measured.is_empty());
    }

    #[test]
    fn selection_is_order_independent() {
        // Measure the same candidates through `select` with costs that tie
        // everywhere: the winner must be the lowest-index candidate, the
        // same one the serial `tune` loop picks — no matter which thread
        // or order produced the measurements.
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        let serial = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
            |m| Some((m.block_threads() % 7) as f64),
        )
        .unwrap();
        let plan = plan(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
        );
        // "Parallel" measurement: compute all costs, in reverse order.
        let mut costs = vec![None; plan.candidates.len()];
        for i in (0..plan.candidates.len()).rev() {
            costs[i] = Some((plan.candidates[i].mapping.block_threads() % 7) as f64);
        }
        let parallel = select(&plan, &costs).unwrap();
        assert_eq!(parallel.best, serial.best);
        assert_eq!(parallel.best_cost, serial.best_cost);
        assert_eq!(parallel.measured.len(), serial.measured.len());
    }

    #[test]
    fn none_when_nothing_measurable() {
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        assert!(tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
            |_| None
        )
        .is_none());
    }
}
