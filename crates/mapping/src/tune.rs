//! Empirical auto-tuning over the mapping space.
//!
//! Section IV-B: "our mapping parameters can be used by other compiler or
//! auto-tuners to explore the mapping space", and the Figure 17 discussion
//! notes the static score has false negatives that only measurement can
//! recover. This module provides that exploration: enumerate the
//! hard-valid candidates, optionally pre-filter by static score, measure
//! each with a caller-provided cost function, and return the empirically
//! best mapping.

use crate::constraint::Weights;
use crate::params::MappingDecision;
use crate::search::{enumerate_scored, ScoredMapping};
use multidim_device::GpuSpec;
use multidim_ir::{Bindings, Program};

/// Tuning configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOptions {
    /// Only measure candidates whose normalized score is at least this
    /// fraction of the best score (1.0 = only ties with the static
    /// winner; 0.0 = measure everything). Score-guided pruning trades
    /// tuning time against Figure 17's region-C false negatives.
    pub score_floor: f64,
    /// Hard cap on measured candidates (highest-scored first).
    pub max_measurements: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            score_floor: 0.0,
            max_measurements: usize::MAX,
        }
    }
}

/// One measured candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Measured {
    /// The candidate and its static score.
    pub candidate: ScoredMapping,
    /// Measured cost (seconds, or any monotone figure of merit).
    pub cost: f64,
}

/// The tuning outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Empirically best mapping.
    pub best: MappingDecision,
    /// Its measured cost.
    pub best_cost: f64,
    /// All measurements, sorted by cost ascending.
    pub measured: Vec<Measured>,
    /// Candidates skipped by the cost function (not executable).
    pub skipped: usize,
}

/// Exhaustively (or score-guided) tune `program`'s mapping with the given
/// measurement function. `measure` returns the cost of one candidate, or
/// `None` when the candidate cannot be compiled/executed.
///
/// Returns `None` when no candidate could be measured.
pub fn tune(
    program: &Program,
    bindings: &Bindings,
    gpu: &GpuSpec,
    weights: &Weights,
    options: &TuneOptions,
    mut measure: impl FnMut(&MappingDecision) -> Option<f64>,
) -> Option<TuneResult> {
    let mut candidates = enumerate_scored(program, bindings, gpu, weights);
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let best_score = candidates
        .first()
        .map(|c| c.normalized_score)
        .unwrap_or(0.0);

    let mut measured = Vec::new();
    let mut skipped = 0usize;
    for cand in candidates {
        if measured.len() >= options.max_measurements {
            break;
        }
        if cand.normalized_score < options.score_floor * best_score {
            continue;
        }
        match measure(&cand.mapping) {
            Some(cost) => measured.push(Measured {
                candidate: cand,
                cost,
            }),
            None => skipped += 1,
        }
    }
    measured.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let best = measured.first()?;
    Some(TuneResult {
        best: best.candidate.mapping.clone(),
        best_cost: best.cost,
        measured,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Span;
    use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind, Size};

    fn program() -> (Program, Bindings) {
        let mut b = ProgramBuilder::new("t");
        let r = b.sym("R");
        let c = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
        let root = b.map(Size::sym(r), |b, row| {
            b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(r, 512);
        bind.bind(c, 512);
        (p, bind)
    }

    #[test]
    fn finds_the_synthetic_optimum() {
        // Synthetic cost: block_threads distance from 128 — the tuner must
        // find a 128-thread candidate.
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        let r = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
            |m| Some((m.block_threads() as f64 - 128.0).abs()),
        )
        .unwrap();
        assert_eq!(r.best.block_threads(), 128);
        assert_eq!(r.best_cost, 0.0);
        assert!(r.measured.len() > 10);
    }

    #[test]
    fn score_floor_prunes() {
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        let full = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
            |_| Some(1.0),
        )
        .unwrap();
        let pruned = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions {
                score_floor: 0.9,
                ..Default::default()
            },
            |_| Some(1.0),
        )
        .unwrap();
        assert!(pruned.measured.len() < full.measured.len());
    }

    #[test]
    fn measurement_cap() {
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        let r = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions {
                max_measurements: 5,
                ..Default::default()
            },
            |_| Some(1.0),
        )
        .unwrap();
        assert_eq!(r.measured.len(), 5);
    }

    #[test]
    fn unmeasurable_candidates_are_skipped() {
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        let r = tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
            |m| {
                // Pretend splits are not executable.
                if m.levels().iter().any(|l| matches!(l.span, Span::Split(_))) {
                    None
                } else {
                    Some(m.block_threads() as f64)
                }
            },
        )
        .unwrap();
        assert!(!r.measured.is_empty());
    }

    #[test]
    fn none_when_nothing_measurable() {
        let (p, bind) = program();
        let gpu = GpuSpec::tesla_k20c();
        assert!(tune(
            &p,
            &bind,
            &gpu,
            &Weights::default(),
            &TuneOptions::default(),
            |_| None
        )
        .is_none());
    }
}
