//! `load` — zipf load generator over the 25-workload catalog.
//!
//! Drives `Engine::submit` (or, with `--shards N`, the sharded
//! `FrontDoor`) from N concurrent clients with a seeded,
//! zipf-distributed request schedule, and prints the load dashboard
//! (availability, shed rate, deadline-miss rate, SLO burn rates,
//! overload sparklines, per-workload and per-tenant tail latency). With
//! `--report PATH` it also writes the JSON report the `check_regression`
//! gate compares against `BENCH_load_baseline.json`.
//!
//! ```text
//! cargo run --release -p multidim-bench --bin load -- \
//!     --clients 8 --skew 1.0 --seed 42 --duration 5s --report load.report.json
//! cargo run --release -p multidim-bench --bin load -- \
//!     --shards 4 --tenants 8 --duration 5s --report fleet.report.json
//! ```
//!
//! Modes (`--mode`):
//! * `overdrive` (default) — calibrate closed-loop capacity with a short
//!   burst, then run open-loop at `--overdrive-factor` times it. The
//!   machine-independent overload mode: shed rate is set by the factor,
//!   not by host speed.
//! * `closed` — each client waits for its response; `--requests N` bounds
//!   per-client count, else `--duration` bounds wall clock.
//! * `open` — fixed aggregate `--target-rps`, nobody waits.
//!
//! Sharding (`--shards N`, N > 1): requests route through the front
//! door's rendezvous router onto N engine shards (each with
//! `workers / N` workers, so total parallelism matches the single-engine
//! run). `--tenants M` spreads the clients over M tenants
//! deterministically from the seed; quotas default to unlimited so the
//! gate metrics stay comparable.
//!
//! Tracing and alerting:
//! * `--traces PATH` installs a process-wide tail-sampling trace store
//!   for the run and writes the kept traces (plus sampler stats) as
//!   JSON; completions whose trace was kept land in the latency
//!   histogram with exemplar trace ids, so the report's p99 links to a
//!   stored trace.
//! * `--alerts PATH` writes the run's alert transition log (the
//!   `check_alerts` gate scans it for page-severity firings).
//! * `--alert-baseline PATH` derives page-severity threshold rules from
//!   a committed baseline and evaluates them live, alongside the
//!   standing ticket-severity burn-rate rules.

use multidim::Compiler;
use multidim_bench::alerts_gate::rules_from_baseline;
use multidim_bench::loadgen::{run_load, run_load_fleet, LoadConfig, LoadMode};
use multidim_bench::regression::DEFAULT_TOLERANCE;
use multidim_engine::{Engine, EngineConfig};
use multidim_obs::Slo;
use multidim_serve::{FrontDoor, FrontDoorConfig, QuotaPolicy};
use multidim_trace::json::Json;
use multidim_trace::{install_store, TailSamplerConfig, TraceStore};
use multidim_workloads::catalog::catalog;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: load [--clients N] [--shards N] [--tenants M] [--skew S] [--seed N]
            [--mode closed|open|overdrive]
            [--duration 5s] [--requests N] [--target-rps R] [--overdrive-factor F]
            [--workers N] [--queue N] [--deadline-ms N] [--window-ms N]
            [--availability-slo F] [--p99-slo-ms F] [--report PATH]
            [--traces PATH] [--alerts PATH] [--alert-baseline PATH]"
    );
    std::process::exit(2);
}

fn parse_duration(s: &str) -> Option<Duration> {
    let s = s.trim();
    if let Some(ms) = s.strip_suffix("ms") {
        return Some(Duration::from_secs_f64(
            ms.trim().parse::<f64>().ok()? / 1e3,
        ));
    }
    if let Some(secs) = s.strip_suffix('s') {
        return Some(Duration::from_secs_f64(secs.trim().parse().ok()?));
    }
    Some(Duration::from_secs_f64(s.parse().ok()?))
}

fn main() {
    let mut clients = 8usize;
    let mut shards = 1usize;
    let mut tenants = 1usize;
    let mut skew = 1.0f64;
    let mut seed = 42u64;
    let mut mode = "overdrive".to_string();
    let mut duration = Duration::from_secs(5);
    let mut requests: Option<usize> = None;
    let mut target_rps: Option<f64> = None;
    let mut factor = 3.0f64;
    let mut workers: Option<usize> = None;
    let mut queue = 16usize;
    let mut deadline_ms = 250u64;
    let mut window_ms = 250u64;
    let mut availability_slo = 0.99f64;
    let mut p99_slo_ms = 50.0f64;
    let mut report: Option<String> = None;
    let mut traces: Option<String> = None;
    let mut alerts: Option<String> = None;
    let mut alert_baseline: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| usage())
        };
        match flag {
            "--clients" => clients = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = value().parse().unwrap_or_else(|_| usage()),
            "--tenants" => tenants = value().parse().unwrap_or_else(|_| usage()),
            "--skew" => skew = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--mode" => mode = value(),
            "--duration" => duration = parse_duration(&value()).unwrap_or_else(|| usage()),
            "--requests" => requests = Some(value().parse().unwrap_or_else(|_| usage())),
            "--target-rps" => target_rps = Some(value().parse().unwrap_or_else(|_| usage())),
            "--overdrive-factor" => factor = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = Some(value().parse().unwrap_or_else(|_| usage())),
            "--queue" => queue = value().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => deadline_ms = value().parse().unwrap_or_else(|_| usage()),
            "--window-ms" => window_ms = value().parse().unwrap_or_else(|_| usage()),
            "--availability-slo" => availability_slo = value().parse().unwrap_or_else(|_| usage()),
            "--p99-slo-ms" => p99_slo_ms = value().parse().unwrap_or_else(|_| usage()),
            "--report" => report = Some(value()),
            "--traces" => traces = Some(value()),
            "--alerts" => alerts = Some(value()),
            "--alert-baseline" => alert_baseline = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let mode = match mode.as_str() {
        "closed" => match requests {
            Some(requests_per_client) => LoadMode::ClosedCount {
                requests_per_client,
            },
            None => LoadMode::ClosedDuration { duration },
        },
        "open" => LoadMode::Open {
            target_rps: target_rps.unwrap_or_else(|| {
                eprintln!("--mode open requires --target-rps");
                std::process::exit(2);
            }),
            duration,
        },
        "overdrive" => LoadMode::Overdrive { factor, duration },
        _ => usage(),
    };

    let mut config = EngineConfig {
        queue_capacity: queue,
        cache_capacity: 64,
        store_path: None,
        default_deadline: Some(Duration::from_millis(deadline_ms)),
        ..EngineConfig::default()
    };
    if let Some(w) = workers {
        config.workers = w;
    }
    let entries = catalog();

    // Page rules derived from the committed baseline join the standing
    // ticket-severity burn rules for live evaluation.
    let mut alert_rules = LoadConfig::default_alert_rules();
    if let Some(path) = &alert_baseline {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read alert baseline `{path}`: {e}"))
            .and_then(|text| {
                Json::parse(&text)
                    .map_err(|e| format!("alert baseline `{path}` is not valid JSON: {e}"))
            })
            .and_then(|json| rules_from_baseline(&json, DEFAULT_TOLERANCE))
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        alert_rules.extend(baseline);
    }

    // Keep every interesting trace of a CI smoke without eviction: the
    // store is bounded, but 32k kept traces is far beyond what a 5 s
    // overdrive run keeps (errors + sheds + slow + ~5% of the rest).
    let store = traces.as_ref().map(|_| {
        Arc::new(TraceStore::new(TailSamplerConfig {
            capacity: 32_768,
            ..TailSamplerConfig::default()
        }))
    });
    let _store_guard = store.clone().map(install_store);

    let cfg = LoadConfig {
        clients,
        tenants,
        skew,
        seed,
        mode,
        slo: Slo::new("load", availability_slo, p99_slo_ms / 1e3),
        window: Duration::from_millis(window_ms),
        windows: 64,
        alert_rules,
    };
    let rep = if shards > 1 {
        // Split the worker budget across shards so total parallelism
        // matches the single-engine run the baseline was recorded on.
        // Per-shard queues get *half* an even split: unlike the single
        // engine's shared queue, a backlog parked behind one busy shard
        // cannot be drained by another shard's idle workers, so the
        // fleet needs shallower buffers to hold the same tail-latency
        // profile under overdrive (spill re-routes the overflow).
        config.workers = (config.workers / shards).max(1);
        config.queue_capacity = (config.queue_capacity / (2 * shards)).max(1);
        let door = FrontDoor::new(
            Compiler::new(),
            FrontDoorConfig {
                shards,
                shard: config,
                quota: QuotaPolicy::default(),
                ..FrontDoorConfig::default()
            },
        );
        let rep = run_load_fleet(&door, &entries, &cfg);
        door.shutdown();
        rep
    } else {
        let engine = Engine::new(Compiler::new(), config);
        let rep = run_load(&engine, &entries, &cfg);
        engine.shutdown();
        rep
    };
    println!("{}", rep.render_text());
    if let Some(store) = &store {
        let stats = store.stats();
        println!(
            "  traces: kept {} of {} finished (dropped {} boring, evicted {})",
            stats.kept, stats.finished, stats.dropped_sampled, stats.evicted
        );
    }

    let write = |path: &str, body: String, what: &str| match std::fs::write(path, body) {
        Ok(()) => eprintln!("wrote {path} ({what})"),
        Err(err) => {
            eprintln!("failed to write {path}: {err}");
            std::process::exit(1);
        }
    };
    if let Some(path) = report {
        write(&path, rep.to_json().render(), "load report");
    }
    if let Some(path) = traces {
        let store = store.as_ref().expect("store installed with --traces");
        write(&path, store.to_json().render(), "kept traces");
    }
    if let Some(path) = alerts {
        let log = Json::Arr(rep.alerts.iter().map(|e| e.to_json()).collect());
        write(&path, log.render(), "alert transition log");
    }
}
