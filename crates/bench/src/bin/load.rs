//! `load` — zipf load generator over the 25-workload catalog.
//!
//! Drives `Engine::submit` (or, with `--shards N`, the sharded
//! `FrontDoor`) from N concurrent clients with a seeded,
//! zipf-distributed request schedule, and prints the load dashboard
//! (availability, shed rate, deadline-miss rate, SLO burn rates,
//! overload sparklines, per-workload and per-tenant tail latency). With
//! `--report PATH` it also writes the JSON report the `check_regression`
//! gate compares against `BENCH_load_baseline.json`.
//!
//! ```text
//! cargo run --release -p multidim-bench --bin load -- \
//!     --clients 8 --skew 1.0 --seed 42 --duration 5s --report load.report.json
//! cargo run --release -p multidim-bench --bin load -- \
//!     --shards 4 --tenants 8 --duration 5s --report fleet.report.json
//! ```
//!
//! Modes (`--mode`):
//! * `overdrive` (default) — calibrate closed-loop capacity with a short
//!   burst, then run open-loop at `--overdrive-factor` times it. The
//!   machine-independent overload mode: shed rate is set by the factor,
//!   not by host speed.
//! * `closed` — each client waits for its response; `--requests N` bounds
//!   per-client count, else `--duration` bounds wall clock.
//! * `open` — fixed aggregate `--target-rps`, nobody waits.
//!
//! Sharding (`--shards N`, N > 1): requests route through the front
//! door's rendezvous router onto N engine shards (each with
//! `workers / N` workers, so total parallelism matches the single-engine
//! run). `--tenants M` spreads the clients over M tenants
//! deterministically from the seed; quotas default to unlimited so the
//! gate metrics stay comparable.

use multidim::Compiler;
use multidim_bench::loadgen::{run_load, run_load_fleet, LoadConfig, LoadMode};
use multidim_engine::{Engine, EngineConfig};
use multidim_obs::Slo;
use multidim_serve::{FrontDoor, FrontDoorConfig, QuotaPolicy};
use multidim_workloads::catalog::catalog;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: load [--clients N] [--shards N] [--tenants M] [--skew S] [--seed N]
            [--mode closed|open|overdrive]
            [--duration 5s] [--requests N] [--target-rps R] [--overdrive-factor F]
            [--workers N] [--queue N] [--deadline-ms N] [--window-ms N]
            [--availability-slo F] [--p99-slo-ms F] [--report PATH]"
    );
    std::process::exit(2);
}

fn parse_duration(s: &str) -> Option<Duration> {
    let s = s.trim();
    if let Some(ms) = s.strip_suffix("ms") {
        return Some(Duration::from_secs_f64(
            ms.trim().parse::<f64>().ok()? / 1e3,
        ));
    }
    if let Some(secs) = s.strip_suffix('s') {
        return Some(Duration::from_secs_f64(secs.trim().parse().ok()?));
    }
    Some(Duration::from_secs_f64(s.parse().ok()?))
}

fn main() {
    let mut clients = 8usize;
    let mut shards = 1usize;
    let mut tenants = 1usize;
    let mut skew = 1.0f64;
    let mut seed = 42u64;
    let mut mode = "overdrive".to_string();
    let mut duration = Duration::from_secs(5);
    let mut requests: Option<usize> = None;
    let mut target_rps: Option<f64> = None;
    let mut factor = 3.0f64;
    let mut workers: Option<usize> = None;
    let mut queue = 16usize;
    let mut deadline_ms = 250u64;
    let mut window_ms = 250u64;
    let mut availability_slo = 0.99f64;
    let mut p99_slo_ms = 50.0f64;
    let mut report: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| usage())
        };
        match flag {
            "--clients" => clients = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = value().parse().unwrap_or_else(|_| usage()),
            "--tenants" => tenants = value().parse().unwrap_or_else(|_| usage()),
            "--skew" => skew = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--mode" => mode = value(),
            "--duration" => duration = parse_duration(&value()).unwrap_or_else(|| usage()),
            "--requests" => requests = Some(value().parse().unwrap_or_else(|_| usage())),
            "--target-rps" => target_rps = Some(value().parse().unwrap_or_else(|_| usage())),
            "--overdrive-factor" => factor = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = Some(value().parse().unwrap_or_else(|_| usage())),
            "--queue" => queue = value().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => deadline_ms = value().parse().unwrap_or_else(|_| usage()),
            "--window-ms" => window_ms = value().parse().unwrap_or_else(|_| usage()),
            "--availability-slo" => availability_slo = value().parse().unwrap_or_else(|_| usage()),
            "--p99-slo-ms" => p99_slo_ms = value().parse().unwrap_or_else(|_| usage()),
            "--report" => report = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let mode = match mode.as_str() {
        "closed" => match requests {
            Some(requests_per_client) => LoadMode::ClosedCount {
                requests_per_client,
            },
            None => LoadMode::ClosedDuration { duration },
        },
        "open" => LoadMode::Open {
            target_rps: target_rps.unwrap_or_else(|| {
                eprintln!("--mode open requires --target-rps");
                std::process::exit(2);
            }),
            duration,
        },
        "overdrive" => LoadMode::Overdrive { factor, duration },
        _ => usage(),
    };

    let mut config = EngineConfig {
        queue_capacity: queue,
        cache_capacity: 64,
        store_path: None,
        default_deadline: Some(Duration::from_millis(deadline_ms)),
        ..EngineConfig::default()
    };
    if let Some(w) = workers {
        config.workers = w;
    }
    let entries = catalog();

    let cfg = LoadConfig {
        clients,
        tenants,
        skew,
        seed,
        mode,
        slo: Slo::new("load", availability_slo, p99_slo_ms / 1e3),
        window: Duration::from_millis(window_ms),
        windows: 64,
    };
    let rep = if shards > 1 {
        // Split the worker budget across shards so total parallelism
        // matches the single-engine run the baseline was recorded on.
        // Per-shard queues get *half* an even split: unlike the single
        // engine's shared queue, a backlog parked behind one busy shard
        // cannot be drained by another shard's idle workers, so the
        // fleet needs shallower buffers to hold the same tail-latency
        // profile under overdrive (spill re-routes the overflow).
        config.workers = (config.workers / shards).max(1);
        config.queue_capacity = (config.queue_capacity / (2 * shards)).max(1);
        let door = FrontDoor::new(
            Compiler::new(),
            FrontDoorConfig {
                shards,
                shard: config,
                quota: QuotaPolicy::default(),
                ..FrontDoorConfig::default()
            },
        );
        let rep = run_load_fleet(&door, &entries, &cfg);
        door.shutdown();
        rep
    } else {
        let engine = Engine::new(Compiler::new(), config);
        let rep = run_load(&engine, &entries, &cfg);
        engine.shutdown();
        rep
    };
    println!("{}", rep.render_text());

    if let Some(path) = report {
        match std::fs::write(&path, rep.to_json().render()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(err) => {
                eprintln!("failed to write {path}: {err}");
                std::process::exit(1);
            }
        }
    }
}
