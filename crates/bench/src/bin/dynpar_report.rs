//! Dynamic-parallelism consolidation report.
//!
//! ```text
//! dynpar_report [--report <path>]
//! ```
//!
//! Sweeps the power-law SpMV workload over a grid of shapes (small /
//! wide-row / narrow-row) and Zipf skews (0.8 / 1.0 / 1.2), compiling
//! each point twice: once under the `Auto` consolidation policy and once
//! with per-row child launches forced (`Naive`, the uncoarsened
//! dynamic-parallelism baseline). Both executables run on the simulator
//! and the report records the chosen strategy, simulated times, launch
//! counters, and the speedup.
//!
//! The bin self-gates: it exits non-zero unless (a) the Auto policy
//! selects all three consolidation strategies (inline / coarsen /
//! aggregate) somewhere across the sweep, and (b) consolidation beats
//! the naive baseline by at least 2x on the wide-row config at skew 1.0.

use multidim::prelude::*;
use multidim::LaunchStrategy;
use multidim_ir::ArrayId;
use multidim_trace::json::Json;
use multidim_workloads::apps::spmv;
use multidim_workloads::data::CsrGraph;
use std::collections::HashMap;
use std::process::ExitCode;

/// The sweep's shape grid: (label, rows, mean degree). Sized so the
/// default `Auto` policy exercises every strategy: `small` falls under
/// the work floor (inline), `wide` has warp-filling rows (coarsen), and
/// `narrow` has tiny rows at large scale (aggregate).
const SHAPES: [(&str, usize, usize); 3] =
    [("small", 384, 8), ("wide", 4096, 16), ("narrow", 131072, 2)];

/// Zipf skew sweep from the issue: moderate, heavy, and extreme tails.
const ALPHAS: [f64; 3] = [0.8, 1.0, 1.2];

fn case(rows: usize, mean: usize, alpha: f64) -> (Program, Bindings, HashMap<ArrayId, Vec<f64>>) {
    let g = CsrGraph::zipf(rows, mean, alpha, 91);
    let (p, n, e, row_ptr, col_idx, vals, x) = spmv::zipf_program(g.mean_degree());
    let mut bind = Bindings::new();
    bind.bind(n, g.nodes as i64);
    bind.bind(e, g.edges as i64);
    let vs: Vec<f64> = (0..g.edges).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
    let xs: Vec<f64> = (0..g.nodes).map(|i| (i % 7) as f64 * 0.25).collect();
    let inputs: HashMap<_, _> = [
        (row_ptr, g.row_ptr.clone()),
        (col_idx, g.col_idx.clone()),
        (vals, vs),
        (x, xs),
    ]
    .into_iter()
    .collect();
    (p, bind, inputs)
}

fn child_launches(run: &RunReport) -> u64 {
    run.kernel_costs.iter().map(|c| c.child_launches).sum()
}

fn main() -> ExitCode {
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => report_path = args.next(),
            "--help" | "-h" => {
                eprintln!("usage: dynpar_report [--report <path>]");
                return ExitCode::from(2);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let mut rows = Vec::new();
    let mut selected: Vec<&'static str> = Vec::new();
    let mut gate_speedup: Option<f64> = None;

    for (label, n, mean) in SHAPES {
        for alpha in ALPHAS {
            let (p, bind, inputs) = case(n, mean, alpha);
            let auto = Compiler::new()
                .compile(&p, &bind)
                .expect("auto compile failed");
            let naive = Compiler::new()
                .dynpar(DynParConfig {
                    policy: DynParPolicy::Force(LaunchStrategy::Naive),
                    ..DynParConfig::default()
                })
                .compile(&p, &bind)
                .expect("naive compile failed");
            let fast = auto.run(&inputs).expect("auto run failed");
            let slow = naive.run(&inputs).expect("naive run failed");
            let out = p.output.expect("spmv has an output");
            assert_eq!(
                fast.outputs[&out], slow.outputs[&out],
                "{label} alpha={alpha}: consolidated output diverges from naive"
            );
            let site = auto.dynpar.site.as_ref().expect("launch site expected");
            let strategy = site.strategy.name();
            if !selected.contains(&strategy) {
                selected.push(strategy);
            }
            let speedup = slow.gpu_seconds / fast.gpu_seconds;
            if label == "wide" && alpha == 1.0 {
                gate_speedup = Some(speedup);
            }
            println!(
                "{label:>6} rows={n:<7} mean={mean:<3} alpha={alpha:<4} -> {strategy:<10} \
                 naive {:>9.1}us  auto {:>9.1}us  ({speedup:.1}x)",
                slow.gpu_seconds * 1e6,
                fast.gpu_seconds * 1e6,
            );
            rows.push(Json::Obj(vec![
                ("workload".into(), Json::Str("spmv_zipf".into())),
                ("shape".into(), Json::Str(label.into())),
                ("rows".into(), Json::Num(n as f64)),
                ("mean_degree".into(), Json::Num(mean as f64)),
                ("alpha".into(), Json::Num(alpha)),
                ("strategy".into(), Json::Str(strategy.into())),
                ("reason".into(), Json::Str(site.reason.clone())),
                ("naive_us".into(), Json::Num(slow.gpu_seconds * 1e6)),
                ("auto_us".into(), Json::Num(fast.gpu_seconds * 1e6)),
                ("speedup".into(), Json::Num(speedup)),
                (
                    "naive_child_launches".into(),
                    Json::Num(child_launches(&slow) as f64),
                ),
                (
                    "auto_child_launches".into(),
                    Json::Num(child_launches(&fast) as f64),
                ),
            ]));
        }
    }

    let gate_speedup = gate_speedup.expect("wide/alpha=1.0 row must exist");
    let all_three = ["inline", "coarsen", "aggregate"]
        .iter()
        .all(|s| selected.contains(s));
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("dynpar".into())),
        (
            "strategies_selected".into(),
            Json::Arr(selected.iter().map(|s| Json::Str((*s).into())).collect()),
        ),
        ("wide_alpha1_speedup".into(), Json::Num(gate_speedup)),
        ("rows".into(), Json::Arr(rows)),
    ]);
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, doc.render()) {
            eprintln!("cannot write report `{path}`: {e}");
            return ExitCode::from(2);
        }
        println!("report written to {path}");
    }

    if !all_three {
        eprintln!("GATE: expected inline/coarsen/aggregate all selected, got {selected:?}");
        return ExitCode::FAILURE;
    }
    if gate_speedup < 2.0 {
        eprintln!("GATE: wide-row consolidation speedup {gate_speedup:.2}x < 2x at alpha 1.0");
        return ExitCode::FAILURE;
    }
    println!(
        "gates pass: strategies {{{}}}, wide-row speedup {gate_speedup:.1}x",
        selected.join(", ")
    );
    ExitCode::SUCCESS
}
