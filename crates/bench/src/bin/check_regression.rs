//! CI perf-regression gate.
//!
//! ```text
//! check_regression <baseline.json> <current.json> [--tolerance <ratio>]
//! ```
//!
//! Both files are the throughput bench's `--report` JSON. Exit code 0 when
//! warm throughput and p99 latency are within tolerance of the baseline,
//! 1 on a regression, 2 on unreadable input. The tolerance can also be
//! set with `MULTIDIM_REGRESSION_TOLERANCE`; the flag wins.

use multidim_bench::regression::{check, DEFAULT_TOLERANCE};
use multidim_trace::json::Json;
use std::process::ExitCode;

fn load(path: &str, which: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {which} report `{path}`: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{which} report `{path}` is not valid JSON: {e}"))
}

fn parse_args() -> Result<(String, String, f64), String> {
    let mut tolerance = match std::env::var("MULTIDIM_REGRESSION_TOLERANCE") {
        Ok(v) => v
            .parse::<f64>()
            .map_err(|_| format!("MULTIDIM_REGRESSION_TOLERANCE is not a number: `{v}`"))?,
        Err(_) => DEFAULT_TOLERANCE,
    };
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--tolerance" {
            let v = args
                .next()
                .ok_or_else(|| "--tolerance needs a value".to_string())?;
            tolerance = v
                .parse::<f64>()
                .map_err(|_| format!("--tolerance is not a number: `{v}`"))?;
        } else {
            positional.push(arg);
        }
    }
    match <[String; 2]>::try_from(positional) {
        Ok([baseline, current]) => Ok((baseline, current, tolerance)),
        Err(_) => Err(
            "usage: check_regression <baseline.json> <current.json> [--tolerance <ratio>]"
                .to_string(),
        ),
    }
}

fn main() -> ExitCode {
    let (baseline_path, current_path, tolerance) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let gate = load(&baseline_path, "baseline").and_then(|baseline| {
        let current = load(&current_path, "current")?;
        check(&baseline, &current, tolerance)
    });
    match gate {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                println!("perf gate: PASS");
                ExitCode::SUCCESS
            } else {
                println!("perf gate: FAIL (regression beyond {tolerance:.2}x tolerance)");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
