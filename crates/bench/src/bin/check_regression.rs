//! CI perf-regression gate.
//!
//! ```text
//! check_regression <baseline.json> <current.json> [--tolerance <ratio>] [--schema warm|load]
//! ```
//!
//! Both files are `--report` JSON from the throughput bench (warm
//! schema, gated on warm throughput and p99) or from the `load` bin
//! (load schema, gated on p99-under-load, shed rate, and availability).
//! The schema is auto-detected from the baseline's keys; `--schema`
//! forces it. Exit code 0 when every gated metric is within tolerance of
//! the baseline, 1 on a regression, 2 on unreadable input. The tolerance
//! can also be set with `MULTIDIM_REGRESSION_TOLERANCE`; the flag wins.
//!
//! The gate also prints how many samples back each report's quantiles
//! and warns loudly below [`MIN_TRUSTED_SAMPLES`] — a pass from a
//! handful of requests is weaker evidence than the green check implies.

use multidim_bench::regression::{sample_count, Schema, DEFAULT_TOLERANCE};
use multidim_trace::json::Json;
use std::process::ExitCode;

/// Below this many samples the gated quantiles are noisy enough that the
/// gate warns on stderr (it still gates — small runs are better than no
/// gate — but the verdict deserves an asterisk).
const MIN_TRUSTED_SAMPLES: u64 = 100;

fn load(path: &str, which: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {which} report `{path}`: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{which} report `{path}` is not valid JSON: {e}"))
}

struct Args {
    baseline: String,
    current: String,
    tolerance: f64,
    schema: Option<Schema>,
}

fn parse_args() -> Result<Args, String> {
    let mut tolerance = match std::env::var("MULTIDIM_REGRESSION_TOLERANCE") {
        Ok(v) => v
            .parse::<f64>()
            .map_err(|_| format!("MULTIDIM_REGRESSION_TOLERANCE is not a number: `{v}`"))?,
        Err(_) => DEFAULT_TOLERANCE,
    };
    let mut schema = None;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--tolerance" {
            let v = args
                .next()
                .ok_or_else(|| "--tolerance needs a value".to_string())?;
            tolerance = v
                .parse::<f64>()
                .map_err(|_| format!("--tolerance is not a number: `{v}`"))?;
        } else if arg == "--schema" {
            let v = args
                .next()
                .ok_or_else(|| "--schema needs a value (warm|load)".to_string())?;
            schema = Some(match v.as_str() {
                "warm" => Schema::Warm,
                "load" => Schema::Load,
                _ => return Err(format!("unknown schema `{v}` (expected warm|load)")),
            });
        } else {
            positional.push(arg);
        }
    }
    match <[String; 2]>::try_from(positional) {
        Ok([baseline, current]) => Ok(Args {
            baseline,
            current,
            tolerance,
            schema,
        }),
        Err(_) => Err(
            "usage: check_regression <baseline.json> <current.json> [--tolerance <ratio>] [--schema warm|load]"
                .to_string(),
        ),
    }
}

fn report_samples(report: &Json, which: &str) {
    match sample_count(report) {
        Some(n) => {
            println!("{which:8} samples: {n}");
            if n < MIN_TRUSTED_SAMPLES {
                eprintln!(
                    "WARNING: {which} report's gated quantiles rest on only {n} samples \
                     (< {MIN_TRUSTED_SAMPLES}); treat this verdict as low-confidence"
                );
            }
        }
        None => eprintln!("WARNING: {which} report carries no sample count"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let gate = load(&args.baseline, "baseline").and_then(|baseline| {
        let current = load(&args.current, "current")?;
        let schema = match args.schema.or_else(|| Schema::detect(&baseline)) {
            Some(s) => s,
            None => {
                return Err(format!(
                    "cannot detect report schema of `{}` (no warm_rps or p99_under_load_us key); \
                     pass --schema warm|load",
                    args.baseline
                ))
            }
        };
        println!(
            "schema: {}",
            match schema {
                Schema::Warm => "warm (throughput bench)",
                Schema::Load => "load (zipf load bench)",
            }
        );
        report_samples(&baseline, "baseline");
        report_samples(&current, "current");
        schema.check(&baseline, &current, args.tolerance)
    });
    match gate {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                println!("perf gate: PASS");
                ExitCode::SUCCESS
            } else {
                println!(
                    "perf gate: FAIL (regression beyond {:.2}x tolerance)",
                    args.tolerance
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
