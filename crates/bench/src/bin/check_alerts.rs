//! CI alert gate.
//!
//! ```text
//! check_alerts <baseline.json> <current.json> [--alerts <log.json>] [--tolerance <ratio>]
//! ```
//!
//! Derives page-severity alert rules from the committed load baseline
//! (p99-under-load, shed rate, availability — see
//! `multidim_bench::alerts_gate`), replays them against the fresh `load
//! --report` JSON, and, when `--alerts` points at the run's alert-log
//! artifact, also fails if any page-severity alert fired during the run.
//! Ticket-severity alerts (the standing burn-rate rules, which fire by
//! design under overdrive) never fail the gate.
//!
//! Exit code 0 when no page fires, 1 when one does, 2 on unreadable or
//! schema-incomplete input — a missing metric is an error, never a
//! silent pass. The tolerance can also be set with
//! `MULTIDIM_REGRESSION_TOLERANCE`; the flag wins.

use multidim_bench::alerts_gate::check_alerts;
use multidim_bench::regression::DEFAULT_TOLERANCE;
use multidim_trace::json::Json;
use std::process::ExitCode;

fn load(path: &str, which: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {which} `{path}`: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{which} `{path}` is not valid JSON: {e}"))
}

struct Args {
    baseline: String,
    current: String,
    alerts: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut tolerance = match std::env::var("MULTIDIM_REGRESSION_TOLERANCE") {
        Ok(v) => v
            .parse::<f64>()
            .map_err(|_| format!("MULTIDIM_REGRESSION_TOLERANCE is not a number: `{v}`"))?,
        Err(_) => DEFAULT_TOLERANCE,
    };
    let mut alerts = None;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--tolerance" {
            let v = args
                .next()
                .ok_or_else(|| "--tolerance needs a value".to_string())?;
            tolerance = v
                .parse::<f64>()
                .map_err(|_| format!("--tolerance is not a number: `{v}`"))?;
        } else if arg == "--alerts" {
            alerts = Some(
                args.next()
                    .ok_or_else(|| "--alerts needs a path".to_string())?,
            );
        } else {
            positional.push(arg);
        }
    }
    match <[String; 2]>::try_from(positional) {
        Ok([baseline, current]) => Ok(Args {
            baseline,
            current,
            alerts,
            tolerance,
        }),
        Err(_) => Err(
            "usage: check_alerts <baseline.json> <current.json> [--alerts <log.json>] [--tolerance <ratio>]"
                .to_string(),
        ),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let gate = load(&args.baseline, "baseline report").and_then(|baseline| {
        let current = load(&args.current, "current report")?;
        let run_log = match &args.alerts {
            Some(path) => Some(load(path, "alert log")?),
            None => None,
        };
        check_alerts(&baseline, &current, run_log.as_ref(), args.tolerance)
    });
    match gate {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                println!("alert gate: PASS");
                ExitCode::SUCCESS
            } else {
                println!("alert gate: FAIL (page-severity alert fired)");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
