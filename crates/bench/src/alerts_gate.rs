//! The alert gate: turn a committed load baseline into page-severity
//! threshold rules, evaluate them against a fresh load report, and scan
//! a run's alert log for page-severity firings.
//!
//! Severity discipline (see [`multidim_obs::alerts`]): overdrive burns
//! SLO budget *on purpose*, so the standing burn-rate rules are tickets
//! and never gate anything. Pages are reserved for regressions relative
//! to the committed `BENCH_load_baseline.json` — the same contract as
//! the [`regression`](crate::regression) gate, expressed as alert rules
//! so one rule set serves three places:
//!
//! 1. **in-run** — `load --alert-baseline` appends these rules to the
//!    load generator's standing set, so a live regression pages during
//!    the run (with [`PAGE_FOR_CYCLES`] windows of hysteresis);
//! 2. **post-run** — [`check_alerts`] replays the rules against the
//!    finished report's headline numbers;
//! 3. **log scan** — [`check_alerts`] also fails if any page-severity
//!    rule fired *during* the run (`--alerts` log artifact).
//!
//! A missing metric in either report is an error (exit 2 in the
//! `check_alerts` binary), never a silent pass.

use crate::regression::{req_f64, AVAILABILITY_ABS_SLACK, SHED_ABS_SLACK};
use multidim_obs::{AlertEngine, AlertRule, AlertSeverity, Comparison, Registry, ThresholdRule};
use multidim_trace::json::Json;

/// Consecutive breaching window rotations before a baseline-derived page
/// rule fires in-run — one slow sample window is noise, three is a
/// trend. The post-run gate replays its single static reading this many
/// times so a persistent breach fires exactly as it would live.
pub const PAGE_FOR_CYCLES: u64 = 3;

/// Shed-rate pages cap out just below 1.0: a baseline that already
/// sheds heavily (overdrive pins ~2/3) would otherwise push the
/// `baseline * tolerance + slack` threshold above any reachable value,
/// and shedding essentially *everything* is page-worthy regardless.
pub const SHED_RATE_CEILING: f64 = 0.995;

/// The report keys the gate reads — also the gauge names
/// the load generator publishes for in-run evaluation, so one rule set
/// works against both a live registry and a finished report.
pub const GATE_METRICS: [&str; 3] = ["p99_under_load_us", "shed_rate", "availability"];

/// Build the page-severity rule set from a committed load baseline.
///
/// * `page-p99-under-load` — p99 latency above `baseline * tolerance`
///   (the doctored-2x detector); firing events carry exemplar trace ids
///   from the `load_request_seconds` histogram when evaluated in-run.
/// * `page-shed-rate` — shed rate above
///   `min(baseline * tolerance + slack, ceiling)`.
/// * `page-availability` — availability below
///   `baseline / tolerance - slack`.
///
/// # Errors
///
/// Returns a message when the baseline is missing a gated metric or the
/// tolerance is not a finite ratio >= 1.0.
pub fn rules_from_baseline(baseline: &Json, tolerance: f64) -> Result<Vec<AlertRule>, String> {
    if !(tolerance.is_finite() && tolerance >= 1.0) {
        return Err(format!(
            "tolerance must be a finite ratio >= 1.0, got {tolerance}"
        ));
    }
    let p99 = req_f64(baseline, "p99_under_load_us", "baseline")?;
    let shed = req_f64(baseline, "shed_rate", "baseline")?;
    let avail = req_f64(baseline, "availability", "baseline")?;
    Ok(vec![
        AlertRule::Threshold(ThresholdRule {
            name: "page-p99-under-load".to_string(),
            severity: AlertSeverity::Page,
            metric: "p99_under_load_us".to_string(),
            quantile: None,
            comparison: Comparison::Above,
            threshold: p99 * tolerance,
            for_cycles: PAGE_FOR_CYCLES,
            exemplar_metric: Some("load_request_seconds".to_string()),
        }),
        AlertRule::Threshold(ThresholdRule {
            name: "page-shed-rate".to_string(),
            severity: AlertSeverity::Page,
            metric: "shed_rate".to_string(),
            quantile: None,
            comparison: Comparison::Above,
            threshold: (shed * tolerance + SHED_ABS_SLACK).min(SHED_RATE_CEILING),
            for_cycles: PAGE_FOR_CYCLES,
            exemplar_metric: None,
        }),
        AlertRule::Threshold(ThresholdRule {
            name: "page-availability".to_string(),
            severity: AlertSeverity::Page,
            metric: "availability".to_string(),
            quantile: None,
            comparison: Comparison::Below,
            threshold: (avail / tolerance - AVAILABILITY_ABS_SLACK).max(0.0),
            for_cycles: PAGE_FOR_CYCLES,
            exemplar_metric: None,
        }),
    ])
}

/// One baseline-derived rule's verdict against the current report.
#[derive(Debug, Clone)]
pub struct GateRuleCheck {
    /// Rule name.
    pub rule: String,
    /// Report key the rule read.
    pub metric: String,
    /// The current report's value.
    pub value: f64,
    /// The baseline-derived threshold.
    pub threshold: f64,
    /// Did the rule end up firing?
    pub firing: bool,
}

/// The alert gate's full verdict.
#[derive(Debug, Clone)]
pub struct AlertGateReport {
    /// Per-rule outcomes against the current report.
    pub checks: Vec<GateRuleCheck>,
    /// Page-severity rules that fired *during* the run, from the
    /// `--alerts` log artifact (empty when no log was supplied).
    pub run_log_pages: Vec<String>,
    /// Tolerance the thresholds were derived with.
    pub tolerance: f64,
}

impl AlertGateReport {
    /// `true` when no page fired — against the report or during the run.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| !c.firing) && self.run_log_pages.is_empty()
    }

    /// Human-readable multi-line summary (one line per rule).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "{:22} {:18} value {:>12.4}  threshold {:>12.4}  [{}]\n",
                c.rule,
                c.metric,
                c.value,
                c.threshold,
                if c.firing { "PAGE" } else { "ok" }
            ));
        }
        if self.run_log_pages.is_empty() {
            out.push_str("run log: no page-severity alerts fired\n");
        } else {
            out.push_str(&format!(
                "run log: page-severity alerts fired: {}\n",
                self.run_log_pages.join(", ")
            ));
        }
        out.push_str(&format!("tolerance {:.2}x\n", self.tolerance));
        out
    }
}

/// Gate `current` (a finished `load --report` JSON) against `baseline`:
/// derive page rules, replay them over the report's headline numbers,
/// and scan `run_log` (the `--alerts` artifact, a JSON array of alert
/// events) for page-severity firings. The caller decides the exit code
/// via [`AlertGateReport::passed`].
///
/// # Errors
///
/// Returns a message when either report is missing a gated metric or
/// the run log is not a JSON array — never a silent pass.
pub fn check_alerts(
    baseline: &Json,
    current: &Json,
    run_log: Option<&Json>,
    tolerance: f64,
) -> Result<AlertGateReport, String> {
    let rules = rules_from_baseline(baseline, tolerance)?;
    let registry = Registry::new();
    for key in GATE_METRICS {
        registry
            .gauge(key, "alert-gate input from the current report")
            .set(req_f64(current, key, "current")?);
    }
    let mut engine = AlertEngine::new(rules);
    // The gate has one static reading; evaluate past every rule's
    // for_cycles hysteresis so a persistent breach fires exactly as it
    // would against a live run.
    for _ in 0..=PAGE_FOR_CYCLES {
        engine.evaluate(Some(&registry), &[]);
    }
    let firing: Vec<String> = engine.firing().into_iter().map(|(name, _)| name).collect();
    let checks = engine
        .rules()
        .iter()
        .filter_map(|rule| match rule {
            AlertRule::Threshold(r) => Some(GateRuleCheck {
                rule: r.name.clone(),
                metric: r.metric.clone(),
                value: registry.value(&r.metric, r.quantile).unwrap_or(f64::NAN),
                threshold: r.threshold,
                firing: firing.contains(&r.name),
            }),
            AlertRule::Burn(_) => None,
        })
        .collect();

    let mut run_log_pages = Vec::new();
    if let Some(log) = run_log {
        let events = log
            .as_arr()
            .ok_or_else(|| "alert log must be a JSON array of alert events".to_string())?;
        for event in events {
            let page = event.get("severity").and_then(Json::as_str) == Some("page");
            let fired = event.get("state").and_then(Json::as_str) == Some("firing");
            if page && fired {
                run_log_pages.push(
                    event
                        .get("rule")
                        .and_then(Json::as_str)
                        .unwrap_or("<unnamed>")
                        .to_string(),
                );
            }
        }
    }

    Ok(AlertGateReport {
        checks,
        run_log_pages,
        tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::DEFAULT_TOLERANCE;

    fn load_report(p99_us: f64, shed: f64, avail: f64) -> Json {
        Json::Obj(vec![
            ("p99_under_load_us".to_string(), Json::Num(p99_us)),
            ("shed_rate".to_string(), Json::Num(shed)),
            ("availability".to_string(), Json::Num(avail)),
        ])
    }

    #[test]
    fn baseline_derives_three_page_rules() {
        let base = load_report(92_000.0, 0.64, 0.36);
        let rules = rules_from_baseline(&base, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(rules.len(), 3);
        assert!(rules.iter().all(|r| r.severity() == AlertSeverity::Page));
        let AlertRule::Threshold(p99) = &rules[0] else {
            panic!("threshold rule expected");
        };
        assert!((p99.threshold - 92_000.0 * DEFAULT_TOLERANCE).abs() < 1e-6);
        assert_eq!(
            p99.exemplar_metric.as_deref(),
            Some("load_request_seconds"),
            "the latency page carries trace evidence"
        );
    }

    #[test]
    fn honest_report_passes() {
        let base = load_report(92_301.0, 0.6416, 0.3584);
        let cur = load_report(95_000.0, 0.65, 0.35);
        let gate = check_alerts(&base, &cur, None, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed(), "{}", gate.render());
        assert_eq!(gate.checks.len(), 3);
    }

    #[test]
    fn doctored_2x_latency_pages() {
        let base = load_report(92_301.0, 0.6416, 0.3584);
        let cur = load_report(92_301.0 * 2.0, 0.6416, 0.3584);
        let gate = check_alerts(&base, &cur, None, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        let p99 = &gate.checks[0];
        assert!(p99.firing, "{}", gate.render());
        assert_eq!(p99.rule, "page-p99-under-load");
        assert!(!gate.checks[1].firing && !gate.checks[2].firing);
        assert!(gate.render().contains("PAGE"));
    }

    #[test]
    fn availability_collapse_pages() {
        let base = load_report(92_301.0, 0.30, 0.70);
        let cur = load_report(92_301.0, 0.30, 0.10);
        let gate = check_alerts(&base, &cur, None, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        assert!(gate.checks[2].firing, "{}", gate.render());
    }

    #[test]
    fn heavy_shed_baseline_still_pages_on_total_shed() {
        // 0.64 * 1.8 + slack > 1, so only the ceiling keeps this rule
        // meaningful: shedding ~everything must still page.
        let base = load_report(92_301.0, 0.6416, 0.3584);
        let cur = load_report(92_301.0, 0.999, 0.001);
        let gate = check_alerts(&base, &cur, None, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.checks[1].firing, "{}", gate.render());
    }

    #[test]
    fn missing_metric_is_an_error_not_a_pass() {
        let base = load_report(92_301.0, 0.6416, 0.3584);
        let cur = Json::Obj(vec![("p99_under_load_us".to_string(), Json::Num(92_301.0))]);
        let err = check_alerts(&base, &cur, None, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("shed_rate"), "error was: {err}");
        assert!(rules_from_baseline(&cur, DEFAULT_TOLERANCE).is_err());
        assert!(rules_from_baseline(&base, 0.5).is_err());
    }

    #[test]
    fn run_log_page_fails_even_when_report_is_clean() {
        let base = load_report(92_301.0, 0.6416, 0.3584);
        let log = Json::parse(
            r#"[
                {"rule":"latency-burn","severity":"ticket","state":"firing"},
                {"rule":"page-p99-under-load","severity":"page","state":"firing"},
                {"rule":"page-p99-under-load","severity":"page","state":"resolved"}
            ]"#,
        )
        .unwrap();
        let gate = check_alerts(&base, &base, Some(&log), DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        assert_eq!(gate.run_log_pages, vec!["page-p99-under-load"]);
        assert!(gate.render().contains("page-p99-under-load"));
    }

    #[test]
    fn ticket_only_run_log_passes() {
        let base = load_report(92_301.0, 0.6416, 0.3584);
        let log =
            Json::parse(r#"[{"rule":"availability-burn","severity":"ticket","state":"firing"}]"#)
                .unwrap();
        let gate = check_alerts(&base, &base, Some(&log), DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed(), "{}", gate.render());
        let bad_log = Json::Str("nope".to_string());
        assert!(check_alerts(&base, &base, Some(&bad_log), DEFAULT_TOLERANCE).is_err());
    }
}
