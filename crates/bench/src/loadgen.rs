//! A deterministic zipf-distributed load generator over the workload
//! catalog, driving [`Engine::submit`] from N concurrent clients.
//!
//! The paper's serving story ("heavy traffic from millions of users")
//! needs skewed traffic: real request streams follow a power law, and a
//! power law is exactly what stresses the engine's cache (hot programs
//! stay resident, cold ones churn) and backpressure (bursts shed). This
//! module provides:
//!
//! * a [`ZipfSampler`] — rank `r` of `n` workloads drawn with probability
//!   proportional to `1/(r+1)^skew`;
//! * deterministic per-client request **schedules** ([`client_schedule`]):
//!   with a fixed seed the sequence of workload indices each client
//!   submits is identical across runs and machines — only how *far* a
//!   duration-bounded run gets through the schedule varies;
//! * closed-loop (each client waits for its response) and open-loop
//!   (clients fire on a fixed cadence and never wait; a full queue sheds)
//!   drivers, plus an **overdrive** mode that calibrates closed-loop
//!   capacity first and then targets a multiple of it — machine-
//!   independent overload;
//! * a [`LoadTarget`] abstraction so the same clients drive either a
//!   single [`Engine`] ([`run_load`]) or the sharded multi-tenant
//!   [`FrontDoor`] ([`run_load_fleet`]), with clients assigned to
//!   tenants deterministically from the seed;
//! * a [`LoadReport`] carrying the gate metrics (`p99_under_load_us`,
//!   `shed_rate`, `availability`), per-workload and per-tenant rows,
//!   the [`SloStatus`] dashboard, and overload time series;
//! * closed-loop **alerting**: the coordinator thread evaluates an
//!   [`AlertEngine`] once per window rotation against the run's SLO
//!   tracker and a live metrics registry (`p99_under_load_us`,
//!   `shed_rate`, `availability`, `queue_depth`), and the report carries
//!   the transition log — ticket-severity burn alerts fire by design
//!   under overdrive, page-severity rules come from a committed baseline
//!   (see the `check_alerts` gate);
//! * trace-linked **exemplars**: when a
//!   [`TraceStore`](multidim_trace::TraceStore) is installed, each
//!   completion whose trace the tail sampler kept lands in the latency
//!   histogram with its trace id attached, so the report's p99 links to
//!   a stored trace.

use multidim_engine::{Engine, EngineError, Request, Response, Ticket};
use multidim_obs::{
    AlertEngine, AlertEvent, AlertRule, AlertSeverity, BurnObjective, BurnRateRule, Exemplar,
    HistogramSnapshot, Registry, Slo, SloStatus, SloTracker, TimeSeries,
};
use multidim_serve::{FrontDoor, ServeError};
use multidim_trace::json::Json;
use multidim_workloads::catalog::CatalogEntry;
use multidim_workloads::data::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retained samples per overload time series.
const SERIES_CAP: usize = 1024;

/// Schedule prefix length hashed into [`LoadReport::schedule_digest`]:
/// long enough that any plausible run consumes less, so the digest is
/// identical across machines of different speeds.
const DIGEST_PREFIX: usize = 4096;

/// A zipf (discrete power-law) sampler over `n` ranked items: item `r`
/// is drawn with probability proportional to `1/(r+1)^skew`. `skew = 0`
/// is uniform; `skew = 1` is the classic zipf; larger is spikier.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` items (at least 1) with the given skew.
    pub fn new(n: usize, skew: f64) -> ZipfSampler {
        let n = n.max(1);
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(skew);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` for a sampler over a single item.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of item `r`.
    pub fn mass(&self, r: usize) -> f64 {
        let lo = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        self.cdf[r] - lo
    }

    /// Draw one item index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        // First index whose cumulative mass exceeds the draw.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// The deterministic workload-index schedule of one client: the first
/// `len` draws of the client's private generator. Two runs with the same
/// `(n, skew, seed, client)` produce identical schedules — this is the
/// reproducibility contract the load bench is gated on.
pub fn client_schedule(n: usize, skew: f64, seed: u64, client: usize, len: usize) -> Vec<usize> {
    let zipf = ZipfSampler::new(n, skew);
    let mut rng = client_rng(seed, client);
    (0..len).map(|_| zipf.sample(&mut rng)).collect()
}

/// Each client's generator is seeded independently of the others so the
/// schedule does not depend on thread interleaving.
fn client_rng(seed: u64, client: usize) -> Rng {
    Rng::new(seed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// FNV-1a over every client's schedule prefix: a cheap cross-run,
/// cross-machine fingerprint of "the same requests in the same order".
pub fn schedule_digest(n: usize, skew: f64, seed: u64, clients: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for client in 0..clients {
        for idx in client_schedule(n, skew, seed, client, DIGEST_PREFIX) {
            h ^= idx as u64 + 1;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Deterministic client → tenant assignment: a pure function of the
/// master seed, so the tenant mix is reproducible across runs and
/// machines (and reshuffles when the seed changes, unlike a plain
/// `client % tenants`).
pub fn tenant_of(seed: u64, client: usize, tenants: usize) -> usize {
    if tenants <= 1 {
        return 0;
    }
    (Rng::new(seed ^ 0x7e4a_4a7e ^ (client as u64).wrapping_mul(0xd134_2543_de82_ef95)).next_u64()
        % tenants as u64) as usize
}

/// The tenant label used for index `i` in reports and submissions.
pub fn tenant_name(i: usize) -> String {
    format!("tenant-{i}")
}

/// What the load generator drives: a single engine or the sharded
/// front door. The clients, pacing, and report are identical either
/// way — only submission and telemetry sampling dispatch.
#[derive(Clone, Copy)]
pub enum LoadTarget<'a> {
    /// One in-process engine; tenant labels are ignored.
    Engine(&'a Engine),
    /// The sharded serving tier; submissions carry tenant labels and
    /// pass through admission control.
    Fleet(&'a FrontDoor),
}

impl<'a> LoadTarget<'a> {
    fn submit(&self, tenant: &str, request: Request) -> Result<AnyTicket, Outcome> {
        match self {
            LoadTarget::Engine(engine) => match engine.submit(request) {
                Ok(t) => Ok(AnyTicket::Engine(t)),
                Err(e) => Err(Outcome::from_engine_error(&e)),
            },
            LoadTarget::Fleet(door) => match door.submit(tenant, request) {
                Ok(t) => Ok(AnyTicket::Fleet(t)),
                Err(e) => Err(Outcome::from_serve_error(&e)),
            },
        }
    }

    fn queue_depth(&self) -> usize {
        match self {
            LoadTarget::Engine(engine) => engine.queue_depth(),
            LoadTarget::Fleet(door) => door.queue_depth(),
        }
    }

    fn in_flight(&self) -> usize {
        match self {
            LoadTarget::Engine(engine) => engine.in_flight(),
            LoadTarget::Fleet(door) => door.in_flight(),
        }
    }

    fn rotate_target_slo(&self) {
        if let LoadTarget::Fleet(door) = self {
            door.rotate_slo();
        }
    }
}

/// A completion handle from either target.
enum AnyTicket {
    Engine(Ticket),
    Fleet(multidim_serve::Ticket),
}

impl AnyTicket {
    /// Condvar-backed park: block up to `timeout` for the result to be
    /// ready without consuming it (the open-loop sweep primitive — no
    /// busy-polling).
    fn wait_ready(&self, timeout: Duration) -> bool {
        match self {
            AnyTicket::Engine(t) => t.wait_ready(timeout),
            AnyTicket::Fleet(t) => t.wait_ready(timeout),
        }
    }

    /// Non-blocking check; yields the outcome exactly once.
    fn poll(&self) -> Option<Outcome> {
        match self {
            AnyTicket::Engine(t) => t.poll().map(|o| Outcome::from_engine(&o)),
            AnyTicket::Fleet(t) => t.poll().map(|o| Outcome::from_serve(&o)),
        }
    }

    /// Block until the outcome arrives.
    fn wait(self) -> Outcome {
        match self {
            AnyTicket::Engine(t) => Outcome::from_engine(&t.wait()),
            AnyTicket::Fleet(t) => Outcome::from_serve(&t.wait()),
        }
    }
}

/// Unified classification of one request's fate, target-independent.
enum Outcome {
    /// Served; carries end-to-end latency (seconds), the cache view, and
    /// the request's trace id when tracing was on for it.
    Completed {
        latency: f64,
        cache_hit: bool,
        trace: Option<u128>,
    },
    /// Rejected by backpressure or shed at admission (deadline
    /// unmeetable, every shard overloaded).
    Shed,
    /// Deadline expired inside a shard.
    Expired,
    /// Rejected by tenant quota — only the fleet target produces this.
    QuotaRejected,
    /// Compile/run/panic/timeout failure. `shutting_down` marks the
    /// engine refusing new work: the client should stop, not retry.
    Failed { shutting_down: bool },
}

impl Outcome {
    fn from_engine(outcome: &Result<Response, EngineError>) -> Outcome {
        match outcome {
            Ok(resp) => Outcome::Completed {
                latency: (resp.queue_wait + resp.service_time).as_secs_f64(),
                cache_hit: resp.cache_hit,
                trace: resp.trace.map(|c| c.trace_id),
            },
            Err(e) => Outcome::from_engine_error(e),
        }
    }

    fn from_engine_error(e: &EngineError) -> Outcome {
        match e {
            EngineError::Rejected { .. } => Outcome::Shed,
            EngineError::DeadlineExceeded { .. } => Outcome::Expired,
            EngineError::ShuttingDown => Outcome::Failed {
                shutting_down: true,
            },
            _ => Outcome::Failed {
                shutting_down: false,
            },
        }
    }

    fn from_serve(outcome: &Result<multidim_serve::ServeResponse, ServeError>) -> Outcome {
        match outcome {
            Ok(served) => Outcome::Completed {
                latency: (served.response.queue_wait + served.response.service_time).as_secs_f64(),
                cache_hit: served.response.cache_hit,
                trace: served.response.trace.map(|c| c.trace_id),
            },
            Err(e) => Outcome::from_serve_error(e),
        }
    }

    fn from_serve_error(e: &ServeError) -> Outcome {
        match e {
            ServeError::QuotaExceeded { .. } => Outcome::QuotaRejected,
            ServeError::Overloaded { .. } | ServeError::DeadlineUnmeetable { .. } => Outcome::Shed,
            ServeError::Engine(e) => Outcome::from_engine_error(e),
        }
    }

    fn is_shutdown(&self) -> bool {
        matches!(
            self,
            Outcome::Failed {
                shutting_down: true
            }
        )
    }
}

/// How the clients pace themselves.
#[derive(Debug, Clone)]
pub enum LoadMode {
    /// Closed loop: each client submits, waits for the response, repeats,
    /// for exactly `requests_per_client` requests. Fully deterministic
    /// request count; used by tests.
    ClosedCount {
        /// Requests each client issues.
        requests_per_client: usize,
    },
    /// Closed loop until `duration` elapses.
    ClosedDuration {
        /// Wall-clock run length.
        duration: Duration,
    },
    /// Open loop: the fleet targets `target_rps` split evenly across
    /// clients; nobody waits for responses, and a full queue sheds.
    Open {
        /// Aggregate target request rate.
        target_rps: f64,
        /// Wall-clock run length.
        duration: Duration,
    },
    /// Open loop at `factor ×` the engine's measured closed-loop
    /// capacity (calibrated with a short closed-loop burst before the
    /// timed run) — machine-independent overload, so shed-rate is set by
    /// `factor`, not by how fast CI hardware happens to be.
    Overdrive {
        /// Multiple of calibrated capacity to target (e.g. `3.0`).
        factor: f64,
        /// Wall-clock run length of the timed phase.
        duration: Duration,
    },
}

/// Load-generator configuration. `Default` is the CI smoke config:
/// 8 clients, skew 1.0, seed 42, 3x overdrive for 5 s.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent clients.
    pub clients: usize,
    /// Tenants the clients are spread over (deterministically from the
    /// seed; see [`tenant_of`]). `1` means everything is one tenant.
    pub tenants: usize,
    /// Zipf skew over the workload catalog.
    pub skew: f64,
    /// Master seed; every client derives its own stream from it.
    pub seed: u64,
    /// Pacing mode.
    pub mode: LoadMode,
    /// SLO the run is judged against.
    pub slo: Slo,
    /// SLO window rotation / telemetry sampling cadence.
    pub window: Duration,
    /// SLO windows retained (the burn-rate horizon).
    pub windows: usize,
    /// Alert rules the coordinator evaluates once per window rotation.
    /// Defaults to [`LoadConfig::default_alert_rules`]; extend with
    /// page-severity rules derived from a committed baseline to make a
    /// run CI-gateable (see `alerts_gate::rules_from_baseline`).
    pub alert_rules: Vec<AlertRule>,
}

impl LoadConfig {
    /// The standing rule set: ticket-severity multi-window burn alerts
    /// on both halves of the SLO. Overdrive burns budget *by design* —
    /// these fire to show the pipeline is live, and being tickets they
    /// never fail the CI alert gate (page rules are reserved for
    /// baseline-conditioned regressions).
    pub fn default_alert_rules() -> Vec<AlertRule> {
        vec![
            AlertRule::Burn(BurnRateRule {
                name: "availability-burn".to_string(),
                severity: AlertSeverity::Ticket,
                slo: "load".to_string(),
                objective: BurnObjective::Availability,
                fast_windows: 4,
                slow_windows: 16,
                threshold: 6.0,
            }),
            AlertRule::Burn(BurnRateRule {
                name: "latency-burn".to_string(),
                severity: AlertSeverity::Ticket,
                slo: "load".to_string(),
                objective: BurnObjective::Latency,
                fast_windows: 4,
                slow_windows: 16,
                threshold: 6.0,
            }),
        ]
    }
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 8,
            tenants: 1,
            skew: 1.0,
            seed: 42,
            mode: LoadMode::Overdrive {
                factor: 3.0,
                duration: Duration::from_secs(5),
            },
            // Overdrive sheds ~2/3 of traffic by design, so judge
            // availability only over admitted (non-shed) work would be
            // kinder — but the SLO deliberately counts sheds: the report
            // should *show* the budget burning under overload.
            slo: Slo::new("load", 0.99, 0.050),
            window: Duration::from_millis(250),
            windows: 64,
            alert_rules: LoadConfig::default_alert_rules(),
        }
    }
}

/// One workload's outcome counters (client-side view).
#[derive(Debug, Clone, Default)]
pub struct WorkloadRow {
    /// Program name.
    pub name: String,
    /// Requests the schedule directed at this workload.
    pub attempted: u64,
    /// Served successfully.
    pub completed: u64,
    /// Rejected by backpressure.
    pub shed: u64,
    /// Deadline expiries.
    pub expired: u64,
    /// Other failures (compile, run, panic).
    pub failed: u64,
    /// Cache hits among completions.
    pub cache_hits: u64,
    /// Cache misses among completions (cold compiles).
    pub cache_misses: u64,
    /// p99 latency of completions, in microseconds (NaN when none).
    pub p99_us: f64,
}

/// One tenant's outcome counters (client-side view).
#[derive(Debug, Clone, Default)]
pub struct TenantRow {
    /// Tenant label ([`tenant_name`]).
    pub name: String,
    /// Requests this tenant's clients attempted.
    pub requests: u64,
    /// Served successfully.
    pub completed: u64,
    /// Rejected by backpressure or shed at admission.
    pub shed: u64,
    /// Rejected by quota.
    pub quota_rejected: u64,
    /// Deadline expiries.
    pub expired: u64,
    /// Other failures.
    pub failed: u64,
    /// p99 latency of completions, in microseconds (NaN when none).
    pub p99_us: f64,
}

/// One overload telemetry series, exported with summary stats.
pub struct SeriesReport {
    /// Series name (`queue_depth`, `in_flight`, `shed_per_sec`, …).
    pub name: String,
    /// The samples.
    pub series: TimeSeries,
}

/// Everything one load run produced. Render with
/// [`LoadReport::render_text`] (dashboard) or [`LoadReport::to_json`]
/// (the `--report` schema the regression gate consumes).
pub struct LoadReport {
    /// Clients that ran.
    pub clients: usize,
    /// Tenants the clients were spread over.
    pub tenants: usize,
    /// Shards behind the target (`None` for a single engine).
    pub shards: Option<usize>,
    /// Zipf skew used.
    pub skew: f64,
    /// Master seed used.
    pub seed: u64,
    /// Mode label (`closed` / `open` / `overdrive`).
    pub mode: String,
    /// Aggregate target rate, when the mode had one.
    pub target_rps: Option<f64>,
    /// Calibrated closed-loop capacity, when overdrive measured one.
    pub calibrated_rps: Option<f64>,
    /// Cross-run schedule fingerprint (seed + skew + clients).
    pub schedule_digest: u64,
    /// Timed-phase wall clock, seconds.
    pub elapsed: f64,
    /// Requests the clients attempted to submit.
    pub attempted: u64,
    /// Requests served successfully.
    pub completed: u64,
    /// Requests rejected by backpressure or shed at admission.
    pub shed: u64,
    /// Requests rejected by tenant quota.
    pub quota_rejected: u64,
    /// Requests whose deadline expired.
    pub expired: u64,
    /// Requests that failed otherwise.
    pub failed: u64,
    /// End-to-end latency of completions (seconds).
    pub latency: HistogramSnapshot,
    /// Per-workload rows, catalog order.
    pub per_workload: Vec<WorkloadRow>,
    /// Per-tenant rows, tenant order.
    pub per_tenant: Vec<TenantRow>,
    /// Workload names classified hot (smallest set covering ≥ half the
    /// attempted requests) — the cache's resident set under skew.
    pub hot_workloads: Vec<String>,
    /// Cache hit rate over hot workloads' completions.
    pub hot_hit_rate: Option<f64>,
    /// Cache hit rate over the remaining (cold) workloads' completions.
    pub cold_hit_rate: Option<f64>,
    /// SLO status over the run.
    pub slo: SloStatus,
    /// Overload telemetry (queue depth, in-flight, shed rate, …).
    pub series: Vec<SeriesReport>,
    /// Alert transition log (firing/resolved edges, evaluation order).
    pub alerts: Vec<AlertEvent>,
    /// `(bucket, exemplar)` pairs from the end-to-end latency histogram:
    /// trace ids of kept traces, one per occupied bucket. Empty when no
    /// trace store was installed for the run.
    pub exemplars: Vec<(usize, Exemplar)>,
}

impl LoadReport {
    /// Served fraction of attempted requests (1.0 when nothing ran).
    pub fn availability(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.completed as f64 / self.attempted as f64
        }
    }

    /// Shed fraction of attempted requests.
    pub fn shed_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.shed as f64 / self.attempted as f64
        }
    }

    /// Quota-rejected fraction of attempted requests.
    pub fn quota_rejected_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.quota_rejected as f64 / self.attempted as f64
        }
    }

    /// Deadline-miss fraction of attempted requests.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.expired as f64 / self.attempted as f64
        }
    }

    /// Completions per second of the timed phase.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed > 0.0 {
            self.completed as f64 / self.elapsed
        } else {
            0.0
        }
    }

    /// p99 end-to-end latency of completions, microseconds.
    pub fn p99_under_load_us(&self) -> f64 {
        self.latency.quantile(0.99).unwrap_or(f64::NAN) * 1e6
    }

    /// The `--report` JSON. Top-level keys are the regression-gate
    /// schema (`p99_under_load_us`, `shed_rate`, `availability`,
    /// `samples`); the rest nests under `per_workload`, `slo`, `series`.
    pub fn to_json(&self) -> Json {
        let num = |v: f64| Json::Num((v * 1e6).round() / 1e6);
        let opt = |v: Option<f64>| v.map(num).unwrap_or(Json::Null);
        let rows = self
            .per_workload
            .iter()
            .map(|w| {
                Json::Obj(vec![
                    ("workload".to_string(), Json::Str(w.name.clone())),
                    ("attempted".to_string(), Json::Num(w.attempted as f64)),
                    ("completed".to_string(), Json::Num(w.completed as f64)),
                    ("shed".to_string(), Json::Num(w.shed as f64)),
                    ("expired".to_string(), Json::Num(w.expired as f64)),
                    ("failed".to_string(), Json::Num(w.failed as f64)),
                    ("cache_hits".to_string(), Json::Num(w.cache_hits as f64)),
                    ("cache_misses".to_string(), Json::Num(w.cache_misses as f64)),
                    (
                        "p99_us".to_string(),
                        if w.p99_us.is_finite() {
                            num(w.p99_us)
                        } else {
                            Json::Null
                        },
                    ),
                ])
            })
            .collect();
        let tenant_rows = self
            .per_tenant
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("tenant".to_string(), Json::Str(t.name.clone())),
                    ("requests".to_string(), Json::Num(t.requests as f64)),
                    ("completed".to_string(), Json::Num(t.completed as f64)),
                    ("shed".to_string(), Json::Num(t.shed as f64)),
                    (
                        "quota_rejected".to_string(),
                        Json::Num(t.quota_rejected as f64),
                    ),
                    ("expired".to_string(), Json::Num(t.expired as f64)),
                    ("failed".to_string(), Json::Num(t.failed as f64)),
                    (
                        "p99_us".to_string(),
                        if t.p99_us.is_finite() {
                            num(t.p99_us)
                        } else {
                            Json::Null
                        },
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("clients".to_string(), Json::Num(self.clients as f64)),
            ("tenants".to_string(), Json::Num(self.tenants as f64)),
            (
                "shards".to_string(),
                self.shards
                    .map(|s| Json::Num(s as f64))
                    .unwrap_or(Json::Null),
            ),
            ("skew".to_string(), num(self.skew)),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            ("target_rps".to_string(), opt(self.target_rps)),
            ("calibrated_rps".to_string(), opt(self.calibrated_rps)),
            (
                "schedule_digest".to_string(),
                Json::Str(format!("{:016x}", self.schedule_digest)),
            ),
            ("elapsed_seconds".to_string(), num(self.elapsed)),
            ("requests".to_string(), Json::Num(self.attempted as f64)),
            ("samples".to_string(), Json::Num(self.completed as f64)),
            ("completed".to_string(), Json::Num(self.completed as f64)),
            ("shed".to_string(), Json::Num(self.shed as f64)),
            (
                "quota_rejected".to_string(),
                Json::Num(self.quota_rejected as f64),
            ),
            ("expired".to_string(), Json::Num(self.expired as f64)),
            ("failed".to_string(), Json::Num(self.failed as f64)),
            ("availability".to_string(), num(self.availability())),
            ("shed_rate".to_string(), num(self.shed_rate())),
            (
                "quota_rejected_rate".to_string(),
                num(self.quota_rejected_rate()),
            ),
            (
                "deadline_miss_rate".to_string(),
                num(self.deadline_miss_rate()),
            ),
            ("throughput_rps".to_string(), num(self.throughput_rps())),
            (
                "p99_under_load_us".to_string(),
                num(self.p99_under_load_us()),
            ),
            (
                "p50_under_load_us".to_string(),
                num(self.latency.quantile(0.5).unwrap_or(f64::NAN) * 1e6),
            ),
            ("hot_hit_rate".to_string(), opt(self.hot_hit_rate)),
            ("cold_hit_rate".to_string(), opt(self.cold_hit_rate)),
            (
                "hot_workloads".to_string(),
                Json::Arr(
                    self.hot_workloads
                        .iter()
                        .map(|n| Json::Str(n.clone()))
                        .collect(),
                ),
            ),
            ("per_workload".to_string(), Json::Arr(rows)),
            ("per_tenant".to_string(), Json::Arr(tenant_rows)),
            ("slo".to_string(), self.slo.to_json()),
            (
                "series".to_string(),
                Json::Arr(self.series.iter().map(|s| s.series.to_json()).collect()),
            ),
            (
                "alerts".to_string(),
                Json::Arr(self.alerts.iter().map(AlertEvent::to_json).collect()),
            ),
            (
                "exemplars".to_string(),
                Json::Arr(
                    self.exemplars
                        .iter()
                        .map(|(bucket, e)| {
                            Json::Obj(vec![
                                ("bucket".to_string(), Json::Num(*bucket as f64)),
                                ("trace_id".to_string(), Json::Str(e.trace_hex())),
                                ("latency_seconds".to_string(), num(e.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Multi-line text dashboard: headline rates, the SLO block,
    /// sparklines, and the busiest per-workload rows.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== load report ===");
        let _ = writeln!(
            out,
            "  {} clients over {} tenant{}{}, zipf skew {}, seed {}, mode {}{}",
            self.clients,
            self.tenants,
            if self.tenants == 1 { "" } else { "s" },
            match self.shards {
                Some(n) => format!(", {n} shards"),
                None => ", single engine".to_string(),
            },
            self.skew,
            self.seed,
            self.mode,
            match (self.target_rps, self.calibrated_rps) {
                (Some(t), Some(c)) => format!(" (target {t:.0} rps = overdrive of {c:.0} rps)"),
                (Some(t), None) => format!(" (target {t:.0} rps)"),
                _ => String::new(),
            }
        );
        let _ = writeln!(
            out,
            "  schedule digest {:016x} (seed-stable across runs)",
            self.schedule_digest
        );
        let _ = writeln!(
            out,
            "  attempted {}  completed {}  shed {}  quota-rejected {}  expired {}  failed {}  in {:.2} s",
            self.attempted,
            self.completed,
            self.shed,
            self.quota_rejected,
            self.expired,
            self.failed,
            self.elapsed
        );
        let _ = writeln!(
            out,
            "  availability {:.3}%  shed rate {:.3}%  quota-rejected rate {:.3}%  deadline-miss rate {:.3}%  throughput {:.0} rps",
            self.availability() * 100.0,
            self.shed_rate() * 100.0,
            self.quota_rejected_rate() * 100.0,
            self.deadline_miss_rate() * 100.0,
            self.throughput_rps()
        );
        let q = |p: f64| self.latency.quantile(p).unwrap_or(f64::NAN) * 1e3;
        let _ = writeln!(
            out,
            "  latency (served) p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
            q(0.5),
            q(0.9),
            q(0.99),
            q(1.0)
        );
        let hit = |v: Option<f64>| match v {
            Some(v) => format!("{:.1}%", v * 100.0),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "  cache hit rate: hot {} ({} workloads: {})  cold {}",
            hit(self.hot_hit_rate),
            self.hot_workloads.len(),
            self.hot_workloads.join(", "),
            hit(self.cold_hit_rate)
        );
        out.push('\n');
        out.push_str(&self.slo.render_text());
        out.push('\n');
        for s in &self.series {
            if let Some(st) = s.series.stats() {
                let _ = writeln!(
                    out,
                    "  {:<16} {}  min {:.1} max {:.1} last {:.1}",
                    s.name,
                    s.series.sparkline(48),
                    st.min,
                    st.max,
                    st.last
                );
            }
        }
        out.push('\n');
        if self.alerts.is_empty() {
            let _ = writeln!(out, "  alerts: none fired");
        } else {
            let _ = writeln!(out, "  alerts ({} transitions):", self.alerts.len());
            for e in &self.alerts {
                let _ = writeln!(out, "    {}", e.render_line());
            }
        }
        if !self.exemplars.is_empty() {
            let slowest = self
                .exemplars
                .iter()
                .max_by(|(a, _), (b, _)| a.cmp(b))
                .expect("non-empty");
            let _ = writeln!(
                out,
                "  exemplars: {} buckets carry trace ids (slowest {} @ {:.2} ms)",
                self.exemplars.len(),
                slowest.1.trace_hex(),
                slowest.1.value * 1e3
            );
        }
        if self.per_tenant.len() > 1 {
            out.push('\n');
            let _ = writeln!(
                out,
                "  {:<14}{:>10}{:>11}{:>8}{:>15}{:>9}{:>12}",
                "tenant", "requests", "completed", "shed", "quota-rejected", "expired", "p99 (µs)"
            );
            for t in &self.per_tenant {
                let _ = writeln!(
                    out,
                    "  {:<14}{:>10}{:>11}{:>8}{:>15}{:>9}{:>12.1}",
                    t.name, t.requests, t.completed, t.shed, t.quota_rejected, t.expired, t.p99_us
                );
            }
        }
        out.push('\n');
        let mut rows: Vec<&WorkloadRow> = self.per_workload.iter().collect();
        rows.sort_by_key(|w| std::cmp::Reverse(w.attempted));
        let _ = writeln!(
            out,
            "  {:<22}{:>10}{:>10}{:>8}{:>9}{:>10}{:>12}",
            "workload", "attempted", "completed", "shed", "expired", "hit rate", "p99 (µs)"
        );
        for w in rows.iter().take(10) {
            let hits = w.cache_hits + w.cache_misses;
            let _ = writeln!(
                out,
                "  {:<22}{:>10}{:>10}{:>8}{:>9}{:>9.1}%{:>12.1}",
                w.name,
                w.attempted,
                w.completed,
                w.shed,
                w.expired,
                100.0 * w.cache_hits as f64 / hits.max(1) as f64,
                w.p99_us
            );
        }
        out
    }
}

/// Per-workload atomics shared by the client threads.
#[derive(Default)]
struct WorkloadCounters {
    attempted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// Per-tenant atomics shared by the client threads.
#[derive(Default)]
struct TenantCounters {
    requests: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    quota_rejected: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
}

/// Shared run state: counters, the SLO tracker, and latency histograms.
/// The end-to-end latency histogram lives in a [`Registry`] (as
/// `load_request_seconds`) so alert threshold rules can read it and
/// attach its exemplars to firing events.
struct RunState {
    workloads: Vec<WorkloadCounters>,
    tenants: Vec<TenantCounters>,
    registry: Registry,
    latency: Arc<multidim_obs::Histogram>,
    per_workload_latency: Vec<multidim_obs::Histogram>,
    per_tenant_latency: Vec<multidim_obs::Histogram>,
    tracker: SloTracker,
    attempted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    quota_rejected: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
}

impl RunState {
    fn new(n: usize, tenants: usize, slo: Slo, windows: usize) -> RunState {
        let tenants = tenants.max(1);
        let registry = Registry::new();
        let latency = registry.histogram(
            "load_request_seconds",
            "end-to-end latency of served requests (client view)",
        );
        RunState {
            workloads: (0..n).map(|_| WorkloadCounters::default()).collect(),
            tenants: (0..tenants).map(|_| TenantCounters::default()).collect(),
            registry,
            latency,
            per_workload_latency: (0..n).map(|_| multidim_obs::Histogram::new()).collect(),
            per_tenant_latency: (0..tenants)
                .map(|_| multidim_obs::Histogram::new())
                .collect(),
            tracker: SloTracker::new(slo, windows),
            attempted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    fn attempt(&self, workload: usize, tenant: usize) {
        self.attempted.fetch_add(1, Ordering::Relaxed);
        self.workloads[workload]
            .attempted
            .fetch_add(1, Ordering::Relaxed);
        self.tenants[tenant]
            .requests
            .fetch_add(1, Ordering::Relaxed);
    }

    fn record(&self, workload: usize, tenant: usize, outcome: &Outcome) {
        let w = &self.workloads[workload];
        let t = &self.tenants[tenant];
        match outcome {
            Outcome::Completed {
                latency,
                cache_hit,
                trace,
            } => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                w.completed.fetch_add(1, Ordering::Relaxed);
                t.completed.fetch_add(1, Ordering::Relaxed);
                if *cache_hit {
                    w.cache_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    w.cache_misses.fetch_add(1, Ordering::Relaxed);
                }
                // Attach the trace id as an exemplar only when the tail
                // sampler kept the trace (the serving tier finishes the
                // trace before the outcome reaches the client), so every
                // published exemplar resolves to a stored trace.
                let kept =
                    trace.filter(|id| multidim_trace::store().is_some_and(|s| s.contains(*id)));
                match kept {
                    Some(id) => self.latency.record_with_exemplar(*latency, id),
                    None => self.latency.record(*latency),
                }
                self.per_workload_latency[workload].record(*latency);
                self.per_tenant_latency[tenant].record(*latency);
                self.tracker.record(*latency, true);
            }
            Outcome::Shed => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                w.shed.fetch_add(1, Ordering::Relaxed);
                t.shed.fetch_add(1, Ordering::Relaxed);
                self.tracker.record(0.0, false);
            }
            Outcome::QuotaRejected => {
                self.quota_rejected.fetch_add(1, Ordering::Relaxed);
                t.quota_rejected.fetch_add(1, Ordering::Relaxed);
                self.tracker.record(0.0, false);
            }
            Outcome::Expired => {
                self.expired.fetch_add(1, Ordering::Relaxed);
                w.expired.fetch_add(1, Ordering::Relaxed);
                t.expired.fetch_add(1, Ordering::Relaxed);
                self.tracker.record(0.0, false);
            }
            Outcome::Failed { .. } => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                w.failed.fetch_add(1, Ordering::Relaxed);
                t.failed.fetch_add(1, Ordering::Relaxed);
                self.tracker.record(0.0, false);
            }
        }
    }
}

/// Refresh the gauges alert threshold rules read. The names mirror the
/// report's gate schema (`p99_under_load_us`, `shed_rate`,
/// `availability`) so the same baseline-derived rules work against a
/// live run and against a finished report in the `check_alerts` gate.
fn sample_alert_gauges(state: &RunState, target: LoadTarget<'_>) {
    let r = &state.registry;
    if let Some(p99) = state.latency.quantile(0.99) {
        r.gauge(
            "p99_under_load_us",
            "p99 latency of completions so far (µs)",
        )
        .set(p99 * 1e6);
    }
    let attempted = state.attempted.load(Ordering::Relaxed);
    if attempted > 0 {
        let shed = state.shed.load(Ordering::Relaxed);
        let completed = state.completed.load(Ordering::Relaxed);
        r.gauge("shed_rate", "shed fraction of attempted requests")
            .set(shed as f64 / attempted as f64);
        r.gauge("availability", "served fraction of attempted requests")
            .set(completed as f64 / attempted as f64);
    }
    r.gauge("queue_depth", "target queue depth at last sample")
        .set(target.queue_depth() as f64);
}

fn request_for(entry: &CatalogEntry) -> Request {
    Request::new(
        entry.program.clone(),
        entry.bindings.clone(),
        entry.inputs.clone(),
    )
}

/// Closed-loop client body: walk the schedule, wait for each response.
fn closed_client(
    target: LoadTarget<'_>,
    entries: &[CatalogEntry],
    state: &RunState,
    zipf: &ZipfSampler,
    mut rng: Rng,
    tenant: usize,
    budget: ClientBudget,
) {
    let label = tenant_name(tenant);
    let start = Instant::now();
    let mut issued = 0usize;
    loop {
        match budget {
            ClientBudget::Count(n) if issued >= n => break,
            ClientBudget::Time(d) if start.elapsed() >= d => break,
            _ => {}
        }
        let wl = zipf.sample(&mut rng);
        issued += 1;
        state.attempt(wl, tenant);
        match target.submit(&label, request_for(&entries[wl])) {
            Ok(ticket) => state.record(wl, tenant, &ticket.wait()),
            Err(outcome) if outcome.is_shutdown() => break,
            Err(outcome) => state.record(wl, tenant, &outcome),
        }
    }
}

/// Open-loop client body: fire on a fixed cadence, sweep completions
/// between sends, drain at the end.
#[allow(clippy::too_many_arguments)]
fn open_client(
    target: LoadTarget<'_>,
    entries: &[CatalogEntry],
    state: &RunState,
    zipf: &ZipfSampler,
    mut rng: Rng,
    tenant: usize,
    interval: Duration,
    duration: Duration,
) {
    let label = tenant_name(tenant);
    let start = Instant::now();
    let mut pending: Vec<(usize, AnyTicket)> = Vec::new();
    let mut next = Duration::ZERO;
    while start.elapsed() < duration {
        // Sweep finished tickets so outcomes land near completion time
        // (burn-rate windows see them in the right rotation).
        pending.retain(|(wl, ticket)| match ticket.poll() {
            Some(outcome) => {
                state.record(*wl, tenant, &outcome);
                false
            }
            None => true,
        });
        let now = start.elapsed();
        if now < next {
            // Park on the oldest in-flight ticket's condvar until it is
            // ready or the cadence comes due — no busy-polling. With
            // nothing in flight, plain-sleep out the gap.
            let gap = next - now;
            match pending.first() {
                Some((_, ticket)) => {
                    ticket.wait_ready(gap);
                }
                None => std::thread::sleep(gap),
            }
            continue;
        }
        next += interval;
        let wl = zipf.sample(&mut rng);
        state.attempt(wl, tenant);
        match target.submit(&label, request_for(&entries[wl])) {
            Ok(ticket) => pending.push((wl, ticket)),
            Err(outcome) if outcome.is_shutdown() => break,
            Err(outcome) => state.record(wl, tenant, &outcome),
        }
    }
    for (wl, ticket) in pending {
        state.record(wl, tenant, &ticket.wait());
    }
}

enum ClientBudget {
    Count(usize),
    Time(Duration),
}

/// Short closed-loop burst measuring sustainable completion rate, for
/// [`LoadMode::Overdrive`].
fn calibrate(target: LoadTarget<'_>, entries: &[CatalogEntry], cfg: &LoadConfig) -> f64 {
    let state = RunState::new(entries.len(), cfg.tenants, cfg.slo.clone(), cfg.windows);
    let burst = Duration::from_millis(750);
    let started = Instant::now();
    std::thread::scope(|s| {
        for client in 0..cfg.clients {
            let state = &state;
            let zipf = ZipfSampler::new(entries.len(), cfg.skew);
            // Offset seed so the calibration burst does not replay the
            // exact prefix the timed run will use (cache state aside,
            // keeps the two phases' schedules independent).
            let rng = client_rng(cfg.seed ^ 0xca11_b8a7_e000_0000, client);
            let tenant = tenant_of(cfg.seed, client, cfg.tenants);
            s.spawn(move || {
                closed_client(
                    target,
                    entries,
                    state,
                    &zipf,
                    rng,
                    tenant,
                    ClientBudget::Time(burst),
                );
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    (state.completed.load(Ordering::Relaxed) as f64 / elapsed).max(1.0)
}

/// Run one load experiment against a single `engine` over `entries`.
///
/// The engine should be primed or cold as the experiment intends — this
/// function does not compile anything up front; cold-compile cost under
/// skew is part of what it measures.
pub fn run_load(engine: &Engine, entries: &[CatalogEntry], cfg: &LoadConfig) -> LoadReport {
    run_load_target(LoadTarget::Engine(engine), None, entries, cfg)
}

/// Run one load experiment against the sharded serving tier. Identical
/// clients, pacing, schedules, and report schema as [`run_load`] — the
/// only differences are that submissions carry tenant labels through
/// admission control and the report records the shard count.
pub fn run_load_fleet(door: &FrontDoor, entries: &[CatalogEntry], cfg: &LoadConfig) -> LoadReport {
    run_load_target(LoadTarget::Fleet(door), Some(door.shards()), entries, cfg)
}

fn run_load_target(
    target: LoadTarget<'_>,
    shards: Option<usize>,
    entries: &[CatalogEntry],
    cfg: &LoadConfig,
) -> LoadReport {
    assert!(!entries.is_empty(), "load needs at least one workload");
    let state = RunState::new(entries.len(), cfg.tenants, cfg.slo.clone(), cfg.windows);
    let zipf = ZipfSampler::new(entries.len(), cfg.skew);

    let (mode_label, target_rps, calibrated_rps, duration) = match &cfg.mode {
        LoadMode::ClosedCount { .. } => ("closed".to_string(), None, None, None),
        LoadMode::ClosedDuration { duration } => {
            ("closed".to_string(), None, None, Some(*duration))
        }
        LoadMode::Open {
            target_rps,
            duration,
        } => ("open".to_string(), Some(*target_rps), None, Some(*duration)),
        LoadMode::Overdrive { factor, duration } => {
            let capacity = calibrate(target, entries, cfg);
            (
                "overdrive".to_string(),
                Some(capacity * factor),
                Some(capacity),
                Some(*duration),
            )
        }
    };

    // Overload telemetry, sampled on the window cadence by the
    // coordinator thread below.
    let queue_depth = TimeSeries::new("queue_depth", SERIES_CAP);
    let in_flight = TimeSeries::new("in_flight", SERIES_CAP);
    let shed_per_sec = TimeSeries::new("shed_per_sec", SERIES_CAP);
    let miss_per_sec = TimeSeries::new("deadline_miss_per_sec", SERIES_CAP);
    let done_per_sec = TimeSeries::new("completed_per_sec", SERIES_CAP);

    let stop = std::sync::atomic::AtomicBool::new(false);
    let started = Instant::now();
    let mut alerts: Vec<AlertEvent> = Vec::new();
    std::thread::scope(|s| {
        // Coordinator: rotate SLO windows, sample overload telemetry,
        // and evaluate the alert rules on the window cadence until the
        // clients are done. Returns the alert transition log.
        let coordinator = {
            let state = &state;
            let stop = &stop;
            let series = (
                &queue_depth,
                &in_flight,
                &shed_per_sec,
                &miss_per_sec,
                &done_per_sec,
            );
            let mut engine = AlertEngine::new(cfg.alert_rules.clone());
            s.spawn(move || {
                let (queue_depth, in_flight, shed_per_sec, miss_per_sec, done_per_sec) = series;
                let mut last = (0u64, 0u64, 0u64);
                let window_secs = cfg.window.as_secs_f64().max(1e-3);
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(cfg.window);
                    let t = started.elapsed().as_secs_f64();
                    queue_depth.push(t, target.queue_depth() as f64);
                    in_flight.push(t, target.in_flight() as f64);
                    let now = (
                        state.shed.load(Ordering::Relaxed),
                        state.expired.load(Ordering::Relaxed),
                        state.completed.load(Ordering::Relaxed),
                    );
                    shed_per_sec.push(t, (now.0 - last.0) as f64 / window_secs);
                    miss_per_sec.push(t, (now.1 - last.1) as f64 / window_secs);
                    done_per_sec.push(t, (now.2 - last.2) as f64 / window_secs);
                    last = now;
                    // Evaluate *before* rotating: burn-rate spans start
                    // at the live window, which the rotation would empty.
                    sample_alert_gauges(state, target);
                    engine.evaluate(Some(&state.registry), &[("load", &state.tracker)]);
                    state.tracker.rotate();
                    target.rotate_target_slo();
                }
                // One final pass over the drained run so short tests that
                // never complete a full window still get an evaluation.
                sample_alert_gauges(state, target);
                engine.evaluate(Some(&state.registry), &[("load", &state.tracker)]);
                engine.log().to_vec()
            })
        };

        // Clients run (and are joined) in an inner scope so the stop
        // flag flips only after every client has drained.
        std::thread::scope(|cs| {
            for client in 0..cfg.clients {
                let state = &state;
                let zipf = zipf.clone();
                let rng = client_rng(cfg.seed, client);
                let tenant = tenant_of(cfg.seed, client, cfg.tenants);
                let mode = cfg.mode.clone();
                cs.spawn(move || match mode {
                    LoadMode::ClosedCount {
                        requests_per_client,
                    } => closed_client(
                        target,
                        entries,
                        state,
                        &zipf,
                        rng,
                        tenant,
                        ClientBudget::Count(requests_per_client),
                    ),
                    LoadMode::ClosedDuration { duration } => closed_client(
                        target,
                        entries,
                        state,
                        &zipf,
                        rng,
                        tenant,
                        ClientBudget::Time(duration),
                    ),
                    LoadMode::Open { .. } | LoadMode::Overdrive { .. } => {
                        let rate = target_rps.expect("open modes have a target");
                        let per_client = (rate / cfg.clients as f64).max(1.0);
                        let interval = Duration::from_secs_f64(1.0 / per_client);
                        open_client(
                            target,
                            entries,
                            state,
                            &zipf,
                            rng,
                            tenant,
                            interval,
                            duration.expect("open modes have a duration"),
                        );
                    }
                });
            }
        });
        stop.store(true, Ordering::Relaxed);
        alerts = coordinator.join().expect("coordinator thread panicked");
    });
    let elapsed = started.elapsed().as_secs_f64();

    finish_report(
        cfg,
        entries,
        state,
        shards,
        mode_label,
        target_rps,
        calibrated_rps,
        elapsed,
        alerts,
        vec![
            SeriesReport {
                name: "queue_depth".to_string(),
                series: queue_depth,
            },
            SeriesReport {
                name: "in_flight".to_string(),
                series: in_flight,
            },
            SeriesReport {
                name: "shed_per_sec".to_string(),
                series: shed_per_sec,
            },
            SeriesReport {
                name: "deadline_miss_per_sec".to_string(),
                series: miss_per_sec,
            },
            SeriesReport {
                name: "completed_per_sec".to_string(),
                series: done_per_sec,
            },
        ],
    )
}

#[allow(clippy::too_many_arguments)]
fn finish_report(
    cfg: &LoadConfig,
    entries: &[CatalogEntry],
    state: RunState,
    shards: Option<usize>,
    mode: String,
    target_rps: Option<f64>,
    calibrated_rps: Option<f64>,
    elapsed: f64,
    alerts: Vec<AlertEvent>,
    series: Vec<SeriesReport>,
) -> LoadReport {
    let per_workload: Vec<WorkloadRow> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let w = &state.workloads[i];
            WorkloadRow {
                name: e.name().to_string(),
                attempted: w.attempted.load(Ordering::Relaxed),
                completed: w.completed.load(Ordering::Relaxed),
                shed: w.shed.load(Ordering::Relaxed),
                expired: w.expired.load(Ordering::Relaxed),
                failed: w.failed.load(Ordering::Relaxed),
                cache_hits: w.cache_hits.load(Ordering::Relaxed),
                cache_misses: w.cache_misses.load(Ordering::Relaxed),
                p99_us: state.per_workload_latency[i]
                    .quantile(0.99)
                    .map(|v| v * 1e6)
                    .unwrap_or(f64::NAN),
            }
        })
        .collect();

    // Hot set: smallest attempted-ordered prefix covering >= 50% of
    // traffic. Under zipf skew this is the handful of programs the cache
    // should keep resident.
    let attempted_total: u64 = per_workload.iter().map(|w| w.attempted).sum();
    let mut order: Vec<usize> = (0..per_workload.len()).collect();
    order.sort_by(|&a, &b| per_workload[b].attempted.cmp(&per_workload[a].attempted));
    let mut hot = Vec::new();
    let mut covered = 0u64;
    for &i in &order {
        if covered * 2 >= attempted_total || per_workload[i].attempted == 0 {
            break;
        }
        covered += per_workload[i].attempted;
        hot.push(i);
    }
    let hit_rate = |set: &dyn Fn(usize) -> bool| {
        let (hits, total) = per_workload
            .iter()
            .enumerate()
            .fold((0u64, 0u64), |(h, t), (i, w)| {
                if set(i) {
                    (h + w.cache_hits, t + w.cache_hits + w.cache_misses)
                } else {
                    (h, t)
                }
            });
        (total > 0).then(|| hits as f64 / total as f64)
    };
    let hot_hit_rate = hit_rate(&|i| hot.contains(&i));
    let cold_hit_rate = hit_rate(&|i| !hot.contains(&i));

    let per_tenant: Vec<TenantRow> = state
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| TenantRow {
            name: tenant_name(i),
            requests: t.requests.load(Ordering::Relaxed),
            completed: t.completed.load(Ordering::Relaxed),
            shed: t.shed.load(Ordering::Relaxed),
            quota_rejected: t.quota_rejected.load(Ordering::Relaxed),
            expired: t.expired.load(Ordering::Relaxed),
            failed: t.failed.load(Ordering::Relaxed),
            p99_us: state.per_tenant_latency[i]
                .quantile(0.99)
                .map(|v| v * 1e6)
                .unwrap_or(f64::NAN),
        })
        .collect();

    LoadReport {
        clients: cfg.clients,
        tenants: state.tenants.len(),
        shards,
        skew: cfg.skew,
        seed: cfg.seed,
        mode,
        target_rps,
        calibrated_rps,
        schedule_digest: schedule_digest(entries.len(), cfg.skew, cfg.seed, cfg.clients),
        elapsed,
        attempted: state.attempted.load(Ordering::Relaxed),
        completed: state.completed.load(Ordering::Relaxed),
        shed: state.shed.load(Ordering::Relaxed),
        quota_rejected: state.quota_rejected.load(Ordering::Relaxed),
        expired: state.expired.load(Ordering::Relaxed),
        failed: state.failed.load(Ordering::Relaxed),
        latency: state.latency.snapshot(),
        hot_workloads: hot.iter().map(|&i| per_workload[i].name.clone()).collect(),
        hot_hit_rate,
        cold_hit_rate,
        per_workload,
        per_tenant,
        slo: state.tracker.status(),
        series,
        alerts,
        exemplars: state.latency.exemplars(),
    }
}
