//! Shared output helpers for the figure-reproduction benches.
//!
//! Each `cargo bench` target in this crate regenerates one table or figure
//! of the paper: it runs the relevant workloads on the simulator and
//! prints the same rows/series the paper plots, normalized the same way.
//! Absolute times are simulator estimates; the *ratios* are the result.
//!
//! The [`regression`] module is the perf gate over the engine throughput
//! bench: it compares a fresh `--report` JSON against the committed
//! `BENCH_baseline.json` and fails CI when warm throughput or p99 latency
//! regresses beyond tolerance (see the `check_regression` binary). The
//! [`loadgen`] module is the zipf load generator behind the `load`
//! binary, whose `--report` output the same gate checks against
//! `BENCH_load_baseline.json` (p99-under-load, shed rate, availability).
//! The [`alerts_gate`] module expresses the same baseline contract as
//! page-severity alert rules: the `load` bin evaluates them live
//! (`--alert-baseline`), and the `check_alerts` binary fails CI when a
//! page fires against a fresh report or fired during the run.

pub mod alerts_gate;
pub mod loadgen;
pub mod regression;

/// Print a titled table: a label column plus one column per series.
pub fn print_table(title: &str, columns: &[&str], rows: &[(String, Vec<f64>)]) {
    println!();
    println!("=== {title} ===");
    print!("{:<28}", "");
    for c in columns {
        print!("{c:>18}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<28}");
        for v in values {
            print!("{v:>18.3}");
        }
        println!();
    }
    println!();
}

/// Normalize a row of times to the value at `base` (the paper's
/// "normalized execution time").
pub fn normalized(times: &[f64], base: usize) -> Vec<f64> {
    let b = times[base];
    times.iter().map(|t| t / b).collect()
}

/// True when the invocation asked for machine-readable metrics dumps:
/// `--report` anywhere on the command line (cargo bench forwards arguments
/// after `--`), or the `MULTIDIM_REPORT` environment variable.
pub fn report_requested() -> bool {
    std::env::args().any(|a| a == "--report") || std::env::var_os("MULTIDIM_REPORT").is_some()
}

/// When [`report_requested`], write the per-launch
/// [`RunMetrics`](multidim_sim::RunMetrics) records
/// as a JSON array to `<label>.metrics.json` in the working directory.
///
/// No-op (and no file) when reporting was not requested or `metrics` is
/// empty, so benches can call it unconditionally on their winning
/// configuration.
pub fn dump_metrics(label: &str, metrics: &[multidim_sim::RunMetrics]) {
    if !report_requested() || metrics.is_empty() {
        return;
    }
    let body: Vec<String> = metrics
        .iter()
        .map(multidim_sim::RunMetrics::render)
        .collect();
    let path = format!("{label}.metrics.json");
    match std::fs::write(&path, format!("[{}]", body.join(","))) {
        Ok(()) => eprintln!("wrote {path} ({} launch records)", metrics.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Format seconds for auxiliary prints.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(normalized(&[2.0, 4.0, 1.0], 2), vec![2.0, 4.0, 1.0]);
        assert_eq!(normalized(&[2.0, 4.0], 0), vec![1.0, 2.0]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(2.5e-3), "2.500 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5 µs");
    }
}
