//! The perf-regression gate: compare a fresh `--report` JSON from the
//! throughput bench (or the `load` bin) against a committed baseline and
//! fail when the serving path got slower beyond tolerance.
//!
//! The **warm** schema ([`check`], vs `BENCH_baseline.json`) gates:
//!
//! * **warm_rps** — warm-path throughput must not fall below
//!   `baseline / tolerance`;
//! * **p99_us** — tail latency must not rise above
//!   `baseline * tolerance`.
//!
//! The **load** schema ([`check_load`], vs `BENCH_load_baseline.json`)
//! gates the overdrive run:
//!
//! * **p99_under_load_us** — tail latency under overload must not rise
//!   above `baseline * tolerance`;
//! * **shed_rate** — backpressure sheds must not grow beyond tolerance
//!   *and* by more than an absolute slack ([`SHED_ABS_SLACK`]) — overdrive
//!   pins the expected shed rate near `1 - 1/factor`, so a real loss of
//!   capacity shows as both;
//! * **availability** — the *unavailability* `1 - availability` must not
//!   grow beyond tolerance (with floor [`UNAVAILABILITY_FLOOR`] so a
//!   near-perfect baseline doesn't make any failure infinite) *and* by
//!   more than [`AVAILABILITY_ABS_SLACK`] absolute.
//!
//! The default tolerance is deliberately loose ([`DEFAULT_TOLERANCE`]):
//! the gate runs on shared CI machines where a 20–40% wobble is noise,
//! but a genuine regression (an accidental O(n²) on the hot path, a lost
//! cache) shows up as 2x or worse. Both sides of the ratio are checked
//! from the same report schema the bench writes, so a schema drift fails
//! loudly instead of silently passing.

use multidim_trace::json::Json;

/// Largest tolerated slowdown ratio before the gate fails. `1.8` means
/// warm throughput may drop to 1/1.8 of baseline and p99 may grow 1.8x;
/// a doctored 2x-slower report must always fail.
pub const DEFAULT_TOLERANCE: f64 = 1.8;

/// Rate floors: ratio checks on a rate divide by
/// `max(baseline_rate, floor)` so a near-zero baseline doesn't turn
/// ordinary wobble into an infinite "slowdown".
pub const SHED_RATE_FLOOR: f64 = 0.02;
/// Floor for the `1 - availability` ratio check (see [`SHED_RATE_FLOOR`]).
pub const UNAVAILABILITY_FLOOR: f64 = 0.01;
/// A rate check only fails when the ratio exceeds tolerance AND the rate
/// grew by more than this absolute slack — a 1% → 2.5% shed rate is a 2.5x
/// ratio but still noise on a short CI run.
pub const SHED_ABS_SLACK: f64 = 0.05;
/// Absolute slack for the availability check (see [`SHED_ABS_SLACK`]).
pub const AVAILABILITY_ABS_SLACK: f64 = 0.02;

/// One gated metric's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Metric key in the report JSON.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Slowdown ratio, oriented so `> tolerance` means regression
    /// (baseline/current for throughput, current/baseline for latency).
    pub slowdown: f64,
    /// Did this metric regress beyond tolerance?
    pub regressed: bool,
}

/// The gate's full verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-metric outcomes, in gating order.
    pub checks: Vec<GateCheck>,
    /// Tolerance the checks were evaluated against.
    pub tolerance: f64,
}

impl GateReport {
    /// `true` when no gated metric regressed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| !c.regressed)
    }

    /// Human-readable multi-line summary (one line per metric).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "{:12} baseline {:>12.3}  current {:>12.3}  slowdown {:>6.3}x  [{}]\n",
                c.metric,
                c.baseline,
                c.current,
                c.slowdown,
                if c.regressed { "FAIL" } else { "ok" }
            ));
        }
        out.push_str(&format!("tolerance {:.2}x\n", self.tolerance));
        out
    }
}

pub(crate) fn req_f64(j: &Json, key: &'static str, which: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{which} report: missing number `{key}`"))
}

/// Gate `current` against `baseline` (both are the throughput bench's
/// `--report` JSON). Returns the per-metric verdict; the caller decides
/// the exit code via [`GateReport::passed`].
///
/// # Errors
///
/// Returns a message when either report is missing a gated metric —
/// a missing key is a gate failure, never a silent pass.
pub fn check(baseline: &Json, current: &Json, tolerance: f64) -> Result<GateReport, String> {
    if !(tolerance.is_finite() && tolerance >= 1.0) {
        return Err(format!(
            "tolerance must be a finite ratio >= 1.0, got {tolerance}"
        ));
    }
    let mut checks = Vec::new();

    // Throughput: lower is worse, so the slowdown ratio is base/current.
    let base_rps = req_f64(baseline, "warm_rps", "baseline")?;
    let cur_rps = req_f64(current, "warm_rps", "current")?;
    let rps_slowdown = if cur_rps > 0.0 {
        base_rps / cur_rps
    } else {
        f64::INFINITY
    };
    checks.push(GateCheck {
        metric: "warm_rps",
        baseline: base_rps,
        current: cur_rps,
        slowdown: rps_slowdown,
        regressed: rps_slowdown > tolerance,
    });

    // Tail latency: higher is worse, so the slowdown ratio is current/base.
    let base_p99 = req_f64(baseline, "p99_us", "baseline")?;
    let cur_p99 = req_f64(current, "p99_us", "current")?;
    let p99_slowdown = if base_p99 > 0.0 {
        cur_p99 / base_p99
    } else {
        f64::INFINITY
    };
    checks.push(GateCheck {
        metric: "p99_us",
        baseline: base_p99,
        current: cur_p99,
        slowdown: p99_slowdown,
        regressed: p99_slowdown > tolerance,
    });

    Ok(GateReport { checks, tolerance })
}

/// Gate a load run (`load --report` JSON) against its committed
/// baseline. See the module docs for the three gated metrics and the
/// ratio-plus-absolute-slack rule on the rate checks.
///
/// # Errors
///
/// Returns a message when either report is missing a gated metric —
/// a missing key is a gate failure, never a silent pass.
pub fn check_load(baseline: &Json, current: &Json, tolerance: f64) -> Result<GateReport, String> {
    if !(tolerance.is_finite() && tolerance >= 1.0) {
        return Err(format!(
            "tolerance must be a finite ratio >= 1.0, got {tolerance}"
        ));
    }
    let mut checks = Vec::new();

    // Tail latency under overload: higher is worse.
    let base_p99 = req_f64(baseline, "p99_under_load_us", "baseline")?;
    let cur_p99 = req_f64(current, "p99_under_load_us", "current")?;
    let p99_slowdown = if base_p99 > 0.0 {
        cur_p99 / base_p99
    } else {
        f64::INFINITY
    };
    checks.push(GateCheck {
        metric: "p99_under_load_us",
        baseline: base_p99,
        current: cur_p99,
        slowdown: p99_slowdown,
        regressed: p99_slowdown > tolerance,
    });

    // Shed rate: higher is worse. Ratio over a floored baseline, and the
    // absolute growth must also exceed the slack — both conditions, so
    // neither a tiny-baseline ratio blowup nor a large-baseline creep
    // alone trips the gate.
    let base_shed = req_f64(baseline, "shed_rate", "baseline")?;
    let cur_shed = req_f64(current, "shed_rate", "current")?;
    let shed_ratio = cur_shed / base_shed.max(SHED_RATE_FLOOR);
    checks.push(GateCheck {
        metric: "shed_rate",
        baseline: base_shed,
        current: cur_shed,
        slowdown: shed_ratio,
        regressed: shed_ratio > tolerance && cur_shed - base_shed > SHED_ABS_SLACK,
    });

    // Availability: lower is worse; gate the growth of unavailability.
    let base_avail = req_f64(baseline, "availability", "baseline")?;
    let cur_avail = req_f64(current, "availability", "current")?;
    let unavail_ratio = (1.0 - cur_avail) / (1.0 - base_avail).max(UNAVAILABILITY_FLOOR);
    checks.push(GateCheck {
        metric: "availability",
        baseline: base_avail,
        current: cur_avail,
        slowdown: unavail_ratio,
        regressed: unavail_ratio > tolerance && base_avail - cur_avail > AVAILABILITY_ABS_SLACK,
    });

    Ok(GateReport { checks, tolerance })
}

/// Which report schema a JSON document carries, detected by its keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schema {
    /// The throughput bench's warm/cold report (`BENCH_baseline.json`).
    Warm,
    /// The `load` bin's under-load report (`BENCH_load_baseline.json`).
    Load,
}

impl Schema {
    /// Detect the schema from a report's keys: `p99_under_load_us` marks
    /// a load report, `warm_rps` a warm report.
    pub fn detect(report: &Json) -> Option<Schema> {
        if report.get("p99_under_load_us").is_some() {
            Some(Schema::Load)
        } else if report.get("warm_rps").is_some() {
            Some(Schema::Warm)
        } else {
            None
        }
    }

    /// Run the matching gate.
    ///
    /// # Errors
    ///
    /// Propagates the underlying gate's missing-metric errors.
    pub fn check(
        self,
        baseline: &Json,
        current: &Json,
        tolerance: f64,
    ) -> Result<GateReport, String> {
        match self {
            Schema::Warm => check(baseline, current, tolerance),
            Schema::Load => check_load(baseline, current, tolerance),
        }
    }
}

/// The report's sample count — completions backing the gated quantiles
/// (`samples` in load reports; `requests * warm_rounds` in warm reports).
pub fn sample_count(report: &Json) -> Option<u64> {
    if let Some(s) = report.get("samples").and_then(Json::as_u64) {
        return Some(s);
    }
    let requests = report.get("requests").and_then(Json::as_u64)?;
    let rounds = report.get("warm_rounds").and_then(Json::as_u64)?;
    Some(requests * rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(warm_rps: f64, p99_us: f64) -> Json {
        Json::Obj(vec![
            ("warm_rps".to_string(), Json::Num(warm_rps)),
            ("p99_us".to_string(), Json::Num(p99_us)),
        ])
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(5000.0, 800.0);
        let gate = check(&base, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed(), "{}", gate.render());
        assert_eq!(gate.checks.len(), 2);
        assert!(gate.checks.iter().all(|c| (c.slowdown - 1.0).abs() < 1e-9));
    }

    #[test]
    fn small_wobble_within_tolerance_passes() {
        let base = report(5000.0, 800.0);
        let cur = report(5000.0 / 1.4, 800.0 * 1.4);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed(), "{}", gate.render());
    }

    #[test]
    fn halved_throughput_fails() {
        let base = report(5000.0, 800.0);
        let cur = report(2500.0, 800.0);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        let rps = &gate.checks[0];
        assert_eq!(rps.metric, "warm_rps");
        assert!(rps.regressed);
        assert!(!gate.checks[1].regressed, "p99 unchanged");
    }

    #[test]
    fn doubled_p99_fails() {
        let base = report(5000.0, 800.0);
        let cur = report(5000.0, 1600.0);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        assert!(gate.checks[1].regressed);
        assert!(gate.render().contains("FAIL"));
    }

    #[test]
    fn improvement_always_passes() {
        let base = report(5000.0, 800.0);
        let cur = report(20_000.0, 100.0);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed());
    }

    #[test]
    fn missing_metric_is_an_error_not_a_pass() {
        let base = report(5000.0, 800.0);
        let cur = Json::Obj(vec![("warm_rps".to_string(), Json::Num(5000.0))]);
        let err = check(&base, &cur, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("p99_us"), "error was: {err}");
    }

    #[test]
    fn zero_current_throughput_is_infinite_slowdown() {
        let base = report(5000.0, 800.0);
        let cur = report(0.0, 800.0);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.checks[0].regressed);
    }

    #[test]
    fn bad_tolerance_is_rejected() {
        let base = report(5000.0, 800.0);
        assert!(check(&base, &base, 0.5).is_err());
        assert!(check(&base, &base, f64::NAN).is_err());
    }

    fn load_report(p99_us: f64, shed: f64, avail: f64) -> Json {
        Json::Obj(vec![
            ("p99_under_load_us".to_string(), Json::Num(p99_us)),
            ("shed_rate".to_string(), Json::Num(shed)),
            ("availability".to_string(), Json::Num(avail)),
            ("samples".to_string(), Json::Num(1000.0)),
        ])
    }

    #[test]
    fn load_identical_reports_pass() {
        let base = load_report(100_000.0, 0.66, 0.33);
        let gate = check_load(&base, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed(), "{}", gate.render());
        assert_eq!(gate.checks.len(), 3);
    }

    #[test]
    fn load_doubled_p99_fails() {
        let base = load_report(100_000.0, 0.66, 0.33);
        let cur = load_report(200_000.0, 0.66, 0.33);
        let gate = check_load(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        assert!(gate.checks[0].regressed, "{}", gate.render());
        assert!(!gate.checks[1].regressed);
        assert!(!gate.checks[2].regressed);
    }

    #[test]
    fn load_doubled_shed_rate_fails() {
        // Baseline sheds 30%; doubling to 60% is a 2x ratio AND 30 points
        // absolute — both conditions trip.
        let base = load_report(100_000.0, 0.30, 0.69);
        let cur = load_report(100_000.0, 0.60, 0.39);
        let gate = check_load(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        assert!(gate.checks[1].regressed, "{}", gate.render());
        assert!(gate.checks[2].regressed, "availability fell 30 points too");
    }

    #[test]
    fn load_tiny_shed_wobble_passes_on_absolute_slack() {
        // 1% -> 2.5% is a 2.5x ratio over the floored baseline but only
        // 1.5 points absolute — inside the slack, so noise, not a gate.
        let base = load_report(100_000.0, 0.01, 0.99);
        let cur = load_report(100_000.0, 0.025, 0.975);
        let gate = check_load(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed(), "{}", gate.render());
    }

    #[test]
    fn load_availability_collapse_fails() {
        let base = load_report(100_000.0, 0.05, 0.95);
        let cur = load_report(100_000.0, 0.05, 0.80);
        let gate = check_load(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        assert!(gate.checks[2].regressed, "{}", gate.render());
    }

    #[test]
    fn load_perfect_baseline_availability_uses_floor() {
        // Baseline 100% available: without the floor any dip would be an
        // infinite ratio. With it, a half-point dip passes, a big one fails.
        let base = load_report(100_000.0, 0.0, 1.0);
        let ok = load_report(100_000.0, 0.0, 0.995);
        let gate = check_load(&base, &ok, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed(), "{}", gate.render());
        let bad = load_report(100_000.0, 0.0, 0.90);
        let gate = check_load(&base, &bad, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
    }

    #[test]
    fn load_missing_metric_is_an_error() {
        let base = load_report(100_000.0, 0.66, 0.33);
        let cur = Json::Obj(vec![(
            "p99_under_load_us".to_string(),
            Json::Num(100_000.0),
        )]);
        let err = check_load(&base, &cur, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("shed_rate"), "error was: {err}");
    }

    #[test]
    fn schema_detection_and_dispatch() {
        let warm = report(5000.0, 800.0);
        let load = load_report(100_000.0, 0.5, 0.5);
        assert_eq!(Schema::detect(&warm), Some(Schema::Warm));
        assert_eq!(Schema::detect(&load), Some(Schema::Load));
        assert_eq!(Schema::detect(&Json::Obj(vec![])), None);
        assert!(Schema::Warm.check(&warm, &warm, 1.8).unwrap().passed());
        assert!(Schema::Load.check(&load, &load, 1.8).unwrap().passed());
        assert!(Schema::Load.check(&warm, &warm, 1.8).is_err());
    }

    #[test]
    fn sample_counts_from_both_schemas() {
        let load = load_report(100_000.0, 0.5, 0.5);
        assert_eq!(sample_count(&load), Some(1000));
        let warm = Json::Obj(vec![
            ("warm_rps".to_string(), Json::Num(5000.0)),
            ("requests".to_string(), Json::Num(8.0)),
            ("warm_rounds".to_string(), Json::Num(20.0)),
        ]);
        assert_eq!(sample_count(&warm), Some(160));
        assert_eq!(sample_count(&Json::Obj(vec![])), None);
    }
}
