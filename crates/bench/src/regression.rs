//! The perf-regression gate: compare a fresh `--report` JSON from the
//! throughput bench against a committed baseline and fail when the warm
//! path got slower beyond tolerance.
//!
//! Two metrics gate merges:
//!
//! * **warm_rps** — warm-path throughput must not fall below
//!   `baseline / tolerance`;
//! * **p99_us** — tail latency must not rise above
//!   `baseline * tolerance`.
//!
//! The default tolerance is deliberately loose ([`DEFAULT_TOLERANCE`]):
//! the gate runs on shared CI machines where a 20–40% wobble is noise,
//! but a genuine regression (an accidental O(n²) on the hot path, a lost
//! cache) shows up as 2x or worse. Both sides of the ratio are checked
//! from the same report schema the bench writes, so a schema drift fails
//! loudly instead of silently passing.

use multidim_trace::json::Json;

/// Largest tolerated slowdown ratio before the gate fails. `1.8` means
/// warm throughput may drop to 1/1.8 of baseline and p99 may grow 1.8x;
/// a doctored 2x-slower report must always fail.
pub const DEFAULT_TOLERANCE: f64 = 1.8;

/// One gated metric's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Metric key in the report JSON.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Slowdown ratio, oriented so `> tolerance` means regression
    /// (baseline/current for throughput, current/baseline for latency).
    pub slowdown: f64,
    /// Did this metric regress beyond tolerance?
    pub regressed: bool,
}

/// The gate's full verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-metric outcomes, in gating order.
    pub checks: Vec<GateCheck>,
    /// Tolerance the checks were evaluated against.
    pub tolerance: f64,
}

impl GateReport {
    /// `true` when no gated metric regressed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| !c.regressed)
    }

    /// Human-readable multi-line summary (one line per metric).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "{:12} baseline {:>12.3}  current {:>12.3}  slowdown {:>6.3}x  [{}]\n",
                c.metric,
                c.baseline,
                c.current,
                c.slowdown,
                if c.regressed { "FAIL" } else { "ok" }
            ));
        }
        out.push_str(&format!("tolerance {:.2}x\n", self.tolerance));
        out
    }
}

fn req_f64(j: &Json, key: &'static str, which: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{which} report: missing number `{key}`"))
}

/// Gate `current` against `baseline` (both are the throughput bench's
/// `--report` JSON). Returns the per-metric verdict; the caller decides
/// the exit code via [`GateReport::passed`].
///
/// # Errors
///
/// Returns a message when either report is missing a gated metric —
/// a missing key is a gate failure, never a silent pass.
pub fn check(baseline: &Json, current: &Json, tolerance: f64) -> Result<GateReport, String> {
    if !(tolerance.is_finite() && tolerance >= 1.0) {
        return Err(format!(
            "tolerance must be a finite ratio >= 1.0, got {tolerance}"
        ));
    }
    let mut checks = Vec::new();

    // Throughput: lower is worse, so the slowdown ratio is base/current.
    let base_rps = req_f64(baseline, "warm_rps", "baseline")?;
    let cur_rps = req_f64(current, "warm_rps", "current")?;
    let rps_slowdown = if cur_rps > 0.0 {
        base_rps / cur_rps
    } else {
        f64::INFINITY
    };
    checks.push(GateCheck {
        metric: "warm_rps",
        baseline: base_rps,
        current: cur_rps,
        slowdown: rps_slowdown,
        regressed: rps_slowdown > tolerance,
    });

    // Tail latency: higher is worse, so the slowdown ratio is current/base.
    let base_p99 = req_f64(baseline, "p99_us", "baseline")?;
    let cur_p99 = req_f64(current, "p99_us", "current")?;
    let p99_slowdown = if base_p99 > 0.0 {
        cur_p99 / base_p99
    } else {
        f64::INFINITY
    };
    checks.push(GateCheck {
        metric: "p99_us",
        baseline: base_p99,
        current: cur_p99,
        slowdown: p99_slowdown,
        regressed: p99_slowdown > tolerance,
    });

    Ok(GateReport { checks, tolerance })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(warm_rps: f64, p99_us: f64) -> Json {
        Json::Obj(vec![
            ("warm_rps".to_string(), Json::Num(warm_rps)),
            ("p99_us".to_string(), Json::Num(p99_us)),
        ])
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(5000.0, 800.0);
        let gate = check(&base, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed(), "{}", gate.render());
        assert_eq!(gate.checks.len(), 2);
        assert!(gate.checks.iter().all(|c| (c.slowdown - 1.0).abs() < 1e-9));
    }

    #[test]
    fn small_wobble_within_tolerance_passes() {
        let base = report(5000.0, 800.0);
        let cur = report(5000.0 / 1.4, 800.0 * 1.4);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed(), "{}", gate.render());
    }

    #[test]
    fn halved_throughput_fails() {
        let base = report(5000.0, 800.0);
        let cur = report(2500.0, 800.0);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        let rps = &gate.checks[0];
        assert_eq!(rps.metric, "warm_rps");
        assert!(rps.regressed);
        assert!(!gate.checks[1].regressed, "p99 unchanged");
    }

    #[test]
    fn doubled_p99_fails() {
        let base = report(5000.0, 800.0);
        let cur = report(5000.0, 1600.0);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!gate.passed());
        assert!(gate.checks[1].regressed);
        assert!(gate.render().contains("FAIL"));
    }

    #[test]
    fn improvement_always_passes() {
        let base = report(5000.0, 800.0);
        let cur = report(20_000.0, 100.0);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.passed());
    }

    #[test]
    fn missing_metric_is_an_error_not_a_pass() {
        let base = report(5000.0, 800.0);
        let cur = Json::Obj(vec![("warm_rps".to_string(), Json::Num(5000.0))]);
        let err = check(&base, &cur, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("p99_us"), "error was: {err}");
    }

    #[test]
    fn zero_current_throughput_is_infinite_slowdown() {
        let base = report(5000.0, 800.0);
        let cur = report(0.0, 800.0);
        let gate = check(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(gate.checks[0].regressed);
    }

    #[test]
    fn bad_tolerance_is_rejected() {
        let base = report(5000.0, 800.0);
        assert!(check(&base, &base, 0.5).is_err());
        assert!(check(&base, &base, f64::NAN).is_err());
    }
}
