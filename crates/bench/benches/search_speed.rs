//! Section IV-D claim: "for typical loops (1 to 3 levels) it takes less
//! than a few seconds for brute-force search to find an efficient
//! mapping."
//!
//! Micro-benchmark of the full analysis (constraint collection + candidate
//! enumeration + scoring + ControlDOP) on 1-, 2- and 3-level nests, using a
//! small self-contained timing loop (median of repeated batches) so the
//! harness needs no external crates.

use multidim_device::GpuSpec;
use multidim_ir::{Bindings, Program, ProgramBuilder, ReduceOp, ScalarKind, Size};
use multidim_mapping::analyze;
use std::time::Instant;

fn nest(levels: usize) -> (Program, Bindings) {
    let mut b = ProgramBuilder::new(format!("nest{levels}"));
    let n = b.sym("N");
    let a = match levels {
        1 => b.input("a", ScalarKind::F32, &[Size::sym(n)]),
        2 => b.input("a", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]),
        _ => b.input(
            "a",
            ScalarKind::F32,
            &[Size::sym(n), Size::sym(n), Size::sym(n)],
        ),
    };
    let root = match levels {
        1 => b.map(Size::sym(n), |b, i| b.read(a, &[i.into()])),
        2 => b.map(Size::sym(n), |b, i| {
            b.reduce(Size::sym(n), ReduceOp::Add, |b, j| {
                b.read(a, &[i.into(), j.into()])
            })
        }),
        _ => b.map(Size::sym(n), |b, i| {
            b.map(Size::sym(n), |b, j| {
                b.reduce(Size::sym(n), ReduceOp::Add, |b, k| {
                    b.read(a, &[i.into(), j.into(), k.into()])
                })
            })
        }),
    };
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 1024);
    (p, bind)
}

/// Median per-iteration time over `batches` batches of `iters` runs.
fn measure(mut f: impl FnMut(), iters: usize, batches: usize) -> f64 {
    let mut samples: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let gpu = GpuSpec::tesla_k20c();
    println!("mapping search speed (median per analysis):");
    for levels in [1usize, 2, 3] {
        let (p, bind) = nest(levels);
        // Warm up once, then time.
        let a = analyze(&p, &bind, &gpu);
        let t = measure(
            || {
                std::hint::black_box(analyze(&p, &bind, &gpu));
            },
            if levels < 3 { 50 } else { 5 },
            5,
        );
        println!(
            "  {levels}-level nest: {:10.3} ms  ({} hard-valid candidates)",
            t * 1e3,
            a.candidates
        );
        assert!(t < 5.0, "search must stay under a few seconds (paper IV-D)");
    }
}
