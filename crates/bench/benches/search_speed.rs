//! Section IV-D claim: "for typical loops (1 to 3 levels) it takes less
//! than a few seconds for brute-force search to find an efficient
//! mapping."
//!
//! Criterion micro-benchmark of the full analysis (constraint collection +
//! candidate enumeration + scoring + ControlDOP) on 1-, 2- and 3-level
//! nests.

use criterion::{criterion_group, criterion_main, Criterion};
use multidim_device::GpuSpec;
use multidim_ir::{Bindings, Program, ProgramBuilder, ReduceOp, ScalarKind, Size};
use multidim_mapping::analyze;

fn nest(levels: usize) -> (Program, Bindings) {
    let mut b = ProgramBuilder::new(format!("nest{levels}"));
    let n = b.sym("N");
    let a = match levels {
        1 => b.input("a", ScalarKind::F32, &[Size::sym(n)]),
        2 => b.input("a", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]),
        _ => b.input("a", ScalarKind::F32, &[Size::sym(n), Size::sym(n), Size::sym(n)]),
    };
    let root = match levels {
        1 => b.map(Size::sym(n), |b, i| b.read(a, &[i.into()])),
        2 => b.map(Size::sym(n), |b, i| {
            b.reduce(Size::sym(n), ReduceOp::Add, |b, j| b.read(a, &[i.into(), j.into()]))
        }),
        _ => b.map(Size::sym(n), |b, i| {
            b.map(Size::sym(n), |b, j| {
                b.reduce(Size::sym(n), ReduceOp::Add, |b, k| {
                    b.read(a, &[i.into(), j.into(), k.into()])
                })
            })
        }),
    };
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 1024);
    (p, bind)
}

fn bench_search(c: &mut Criterion) {
    let gpu = GpuSpec::tesla_k20c();
    for levels in [1usize, 2, 3] {
        let (p, bind) = nest(levels);
        c.bench_function(&format!("mapping_search_{levels}_levels"), |bench| {
            bench.iter(|| std::hint::black_box(analyze(&p, &bind, &gpu)))
        });
    }
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
