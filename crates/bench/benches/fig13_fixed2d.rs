//! Figure 13: MultiDim vs the fixed two-dimensional strategies
//! (thread-block/thread and warp-based) on Rodinia applications written in
//! row-major (R) and column-major (C) traversal orders, normalized to
//! MultiDim.
//!
//! Expected shape (paper): (R) variants roughly tie (fixed strategies up
//! to ~1.5× slower); (C) variants hurt the fixed strategies badly (1.5–
//! 9.6×) because they cannot re-assign dimensions to coalesce.

use multidim::prelude::Strategy;
use multidim_bench::{normalized, print_table};
use multidim_workloads::rodinia::{gaussian, hotspot, mandelbrot, srad, Traversal};

fn main() {
    let strategies = [
        Strategy::MultiDim,
        Strategy::ThreadBlockThread,
        Strategy::WarpBased,
    ];
    let mut rows = Vec::new();

    for t in [Traversal::RowMajor, Traversal::ColMajor] {
        let times: Vec<f64> = strategies
            .iter()
            .map(|&s| {
                gaussian::run(t, gaussian::GaussianMode::Strategy(s), 96)
                    .expect("gaussian")
                    .gpu_seconds
            })
            .collect();
        rows.push((format!("Gaussian {}", t.label()), normalized(&times, 0)));
    }
    for t in [Traversal::RowMajor, Traversal::ColMajor] {
        let times: Vec<f64> = strategies
            .iter()
            .map(|&s| {
                hotspot::run(t, s, 256, 256, 2)
                    .expect("hotspot")
                    .gpu_seconds
            })
            .collect();
        rows.push((format!("Hotspot {}", t.label()), normalized(&times, 0)));
    }
    for t in [Traversal::RowMajor, Traversal::ColMajor] {
        let times: Vec<f64> = strategies
            .iter()
            .map(|&s| {
                mandelbrot::run(t, s, 256, 512)
                    .expect("mandelbrot")
                    .gpu_seconds
            })
            .collect();
        rows.push((format!("Mandelbrot {}", t.label()), normalized(&times, 0)));
    }
    for t in [Traversal::RowMajor, Traversal::ColMajor] {
        let times: Vec<f64> = strategies
            .iter()
            .map(|&s| srad::run(t, s, 192, 192, 2).expect("srad").gpu_seconds)
            .collect();
        rows.push((format!("Srad {}", t.label()), normalized(&times, 0)));
    }

    print_table(
        "Figure 13: normalized execution time (1.0 = MultiDim)",
        &["MultiDim", "TB/Thread", "Warp"],
        &rows,
    );
    println!("paper reference: (R) rows ≈ 1.0–1.6; (C) rows 1.5–9.6 for fixed strategies");
}
