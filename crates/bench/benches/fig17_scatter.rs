//! Figure 17: performance vs mapping score across the whole candidate
//! space, on Mandelbrot with a skewed (50 × 20K-class) output.
//!
//! Every hard-valid candidate the search enumerates is compiled with its
//! explicit mapping and simulated; the bench prints `(score, normalized
//! time, mapping)` tuples — the paper's scatter. Expected shape: a region
//! of high-score mappings with the best performance (region A), the
//! warp-based point far off it (region B), and some low-score/
//! high-performance false negatives (region C).

use multidim::prelude::*;
use multidim_bench::fmt_secs;
use multidim_ir::NestInfo;
use multidim_mapping::{enumerate_scored, fixed_mapping, Weights};
use multidim_workloads::rodinia::{mandelbrot, Traversal};
use std::collections::HashMap;

fn main() {
    // Skewed grid (paper: 50 x 20K; scaled to 50 x 512 — ratios preserved).
    let (h, w) = (50usize, 512usize);
    let (p, hs, ws) = mandelbrot::program(Traversal::RowMajor);
    let mut bind = Bindings::new();
    bind.bind(hs, h as i64);
    bind.bind(ws, w as i64);
    let gpu = GpuSpec::tesla_k20c();

    let candidates = enumerate_scored(&p, &bind, &gpu, &Weights::default());
    println!("candidates passing hard constraints: {}", candidates.len());

    let compiler = Compiler::new();
    let inputs: HashMap<_, _> = HashMap::new();
    let mut points = Vec::new();
    let mut skipped = 0usize;
    for cand in &candidates {
        match compiler
            .compile_with_mapping(&p, &bind, cand.mapping.clone())
            .and_then(|exe| {
                exe.run(&inputs)
                    .map_err(|e| multidim::CompileError(e.to_string()))
            }) {
            Ok(report) => points.push((
                cand.normalized_score,
                report.gpu_seconds,
                cand.mapping.clone(),
            )),
            Err(_) => skipped += 1,
        }
    }
    if skipped > 0 {
        println!("skipped {skipped} candidates the code generator rejects");
    }

    let best = points
        .iter()
        .map(|(_, t, _)| *t)
        .fold(f64::INFINITY, f64::min);
    println!("\nscore, normalized_time, mapping   (normalized to best = 1.0)");
    let mut sorted: Vec<_> = points.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (score, t, m) in &sorted {
        println!("{score:7.3}, {:9.2}, {m}", t / best);
    }

    // The analysis's own choice (region A) and warp-based (region B).
    let analysis = multidim_mapping::analyze(&p, &bind, &gpu);
    let exe = compiler.compile(&p, &bind).expect("compile");
    let chosen = exe.run(&inputs).expect("run").gpu_seconds;
    println!(
        "\nanalysis choice: {} score {:.3} time {} ({:.2}x of best)",
        analysis.decision,
        analysis.normalized_score,
        fmt_secs(chosen),
        chosen / best
    );
    let warp = fixed_mapping(
        Strategy::WarpBased,
        &NestInfo::of(&p),
        &analysis.constraints,
    );
    let wt = compiler
        .compile_with_mapping(&p, &bind, warp.clone())
        .expect("warp compile")
        .run(&inputs)
        .expect("warp run")
        .gpu_seconds;
    println!(
        "warp-based (region B): {warp} time {} ({:.2}x of best)",
        fmt_secs(wt),
        wt / best
    );

    // False negatives: low score but within 1.5x of best (region C).
    let c: usize = sorted
        .iter()
        .filter(|(s, t, _)| *s < 0.5 * analysis.normalized_score && t / best < 1.5)
        .count();
    println!("region C (false negatives: score < half of chosen, time < 1.5x best): {c}");
}
