//! Figure 16: the dynamic-allocation optimizations (Section V-A) on the
//! weighted-sum microbenchmark of Figure 15, normalized to the fully
//! optimized configuration.
//!
//! Expected shape (paper): per-thread malloc is 16–21× slower; fixed
//! row-major preallocation recovers most of it for `sumWeightedRows` but
//! stays ~5× slow for `sumWeightedCols` until the mapping-directed layout
//! (Figure 11b) fixes the coalescing; with layout chosen per mapping both
//! variants run in the same time.

use multidim_bench::{fmt_secs, normalized, print_table};
use multidim_workloads::sums::{run_sum_weighted, AllocMode, SumKind};

fn main() {
    // Large enough that ControlDOP does not split the reduce (a split
    // section re-runs the per-thread malloc, inflating the baseline
    // beyond what the paper's configuration measures).
    let (rows_n, cols_n) = (1024, 1024);
    let modes = [
        AllocMode::PreallocOptimizedLayout,
        AllocMode::PreallocRowMajor,
        AllocMode::Malloc,
    ];

    let mut rows = Vec::new();
    let mut opt_times = Vec::new();
    for kind in [SumKind::Cols, SumKind::Rows] {
        let times: Vec<f64> = modes
            .iter()
            .map(|&m| {
                run_sum_weighted(kind, m, rows_n, cols_n)
                    .expect("weighted")
                    .gpu_seconds
            })
            .collect();
        opt_times.push(times[0]);
        let label = match kind {
            SumKind::Cols => "sumWeightedCols",
            SumKind::Rows => "sumWeightedRows",
        };
        rows.push((label.to_string(), normalized(&times, 0)));
    }

    print_table(
        "Figure 16: normalized execution time (1.0 = prealloc + layout opt)",
        &["Prealloc+Layout", "Prealloc RowMajor", "Malloc"],
        &rows,
    );
    println!(
        "optimized absolute times (paper: equal for both variants): {} vs {}",
        fmt_secs(opt_times[0]),
        fmt_secs(opt_times[1])
    );
    println!("paper reference: Cols 1.0 / 5.3 / 20.8  —  Rows 1.0 / ~1 / 16.2");
}
