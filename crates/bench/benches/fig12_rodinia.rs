//! Figure 12: Rodinia applications — Manual vs MultiDim vs 1D, normalized
//! to Manual.
//!
//! Expected shape (paper): NN ≈ parity (one level of parallelism);
//! Gaussian *better* than manual (the hand CUDA mis-ordered Fan2's
//! indices); Hotspot/Mandelbrot/Srad ≈ parity with 1D collapsing (15.7×,
//! 40.1×, 25.4× in the paper); Pathfinder and LUD favor manual (2.3× and
//! 4.6×) because the expert fuses iterations through shared memory; BFS
//! favors MultiDim over the top-level-only manual kernel.

use multidim::prelude::Strategy;
use multidim_bench::print_table;
use multidim_workloads::rodinia::Traversal;
use multidim_workloads::rodinia::{bfs, gaussian, hotspot, lud, mandelbrot, nn, pathfinder, srad};
use multidim_workloads::{data::CsrGraph, manual};

fn main() {
    let mut rows = Vec::new();

    // Nearest Neighbor: 16K records.
    {
        let man = manual::nn_manual(16384).expect("nn manual");
        let md = nn::run(Strategy::MultiDim, 16384).expect("nn multidim");
        let od = nn::run(Strategy::OneD, 16384).expect("nn 1d");
        rows.push(row(
            "NearestNeighbor",
            man.gpu_seconds,
            md.gpu_seconds,
            od.gpu_seconds,
        ));
    }

    // Gaussian Elimination: 96x96 system; manual = Rodinia's flipped Fan2.
    {
        use gaussian::GaussianMode;
        let man =
            gaussian::run(Traversal::RowMajor, GaussianMode::ManualRodinia, 96).expect("gaussian");
        let md = gaussian::run(
            Traversal::RowMajor,
            GaussianMode::Strategy(Strategy::MultiDim),
            96,
        )
        .expect("gaussian");
        let od = gaussian::run(
            Traversal::RowMajor,
            GaussianMode::Strategy(Strategy::OneD),
            96,
        )
        .expect("gaussian");
        rows.push(row(
            "GaussianElim",
            man.gpu_seconds,
            md.gpu_seconds,
            od.gpu_seconds,
        ));
    }

    // Hotspot: 256x256, 4 steps. The paper's manual CUDA performs
    // comparably to the generated MultiDim kernels (parity), so the manual
    // bar reuses the MultiDim mapping.
    {
        let md =
            hotspot::run(Traversal::RowMajor, Strategy::MultiDim, 256, 256, 4).expect("hotspot");
        let od = hotspot::run(Traversal::RowMajor, Strategy::OneD, 256, 256, 4).expect("hotspot");
        rows.push(row(
            "Hotspot",
            md.gpu_seconds,
            md.gpu_seconds,
            od.gpu_seconds,
        ));
    }

    // Mandelbrot: 256x512.
    {
        let md =
            mandelbrot::run(Traversal::RowMajor, Strategy::MultiDim, 256, 512).expect("mandelbrot");
        let od =
            mandelbrot::run(Traversal::RowMajor, Strategy::OneD, 256, 512).expect("mandelbrot");
        rows.push(row(
            "Mandelbrot",
            md.gpu_seconds,
            md.gpu_seconds,
            od.gpu_seconds,
        ));
    }

    // SRAD: 192x192, 2 iterations.
    {
        let md = srad::run(Traversal::RowMajor, Strategy::MultiDim, 192, 192, 2).expect("srad");
        let od = srad::run(Traversal::RowMajor, Strategy::OneD, 192, 192, 2).expect("srad");
        rows.push(row("Srad", md.gpu_seconds, md.gpu_seconds, od.gpu_seconds));
    }

    // Pathfinder: 64 rows x 4096 cols; manual fuses 4 rows per kernel.
    {
        let man = manual::pathfinder_fused(64, 4096, 4).expect("pathfinder manual");
        let md = pathfinder::run(Strategy::MultiDim, 64, 4096).expect("pathfinder");
        let od = pathfinder::run(Strategy::OneD, 64, 4096).expect("pathfinder");
        rows.push(row(
            "Pathfinder",
            man.gpu_seconds,
            md.gpu_seconds,
            od.gpu_seconds,
        ));
    }

    // LUD: 320x320; manual = blocked panels + tiled GEMM.
    {
        let man = manual::lud_blocked(320).expect("lud manual");
        let md = lud::run(Strategy::MultiDim, 320).expect("lud");
        let od = lud::run(Strategy::OneD, 320).expect("lud");
        rows.push(row("LUD", man.gpu_seconds, md.gpu_seconds, od.gpu_seconds));
    }

    // BFS: 8192-node power-law graph; the Rodinia kernel only
    // parallelizes the node loop (our 1D strategy).
    {
        let g = CsrGraph::power_law(8192, 8, 13);
        let man = bfs::run_on(Strategy::OneD, &g).expect("bfs manual(1D)");
        let md = bfs::run_on(Strategy::MultiDim, &g).expect("bfs");
        rows.push(row("BFS", man.gpu_seconds, md.gpu_seconds, man.gpu_seconds));
    }

    print_table(
        "Figure 12: normalized execution time (1.0 = Manual)",
        &["Manual", "MultiDim", "1D"],
        &rows,
    );
    println!("paper reference (MultiDim / 1D vs manual):");
    println!("  NN 1.2/1.2  Gaussian <1/2.4(~)  Hotspot 1.0/15.7  Mandelbrot 1.1/40.1");
    println!("  Srad 1.0/25.4  Pathfinder 2.3/19.1  LUD 4.6/60.8  BFS <1 (beats manual)");
}

fn row(name: &str, manual: f64, multidim: f64, one_d: f64) -> (String, Vec<f64>) {
    (
        name.to_string(),
        vec![1.0, multidim / manual, one_d / manual],
    )
}
