//! Figure 14: real-world applications vs the multicore CPU baseline and
//! the 1D GPU mapping, normalized to CPU.
//!
//! Expected shape (paper): QPSCD — 1D *slower than the CPU* (random outer
//! gather cannot coalesce), MultiDim 4.38× faster than CPU (8.95× over
//! 1D); MSMBuilder — small per-level domains starve 1D, MultiDim 2.4×
//! over CPU (8.7× over 1D); Naive Bayes — MultiDim 12.5× over CPU (4.5×
//! over 1D), dropping to ~1.15× once the input transfer is charged.

use multidim::prelude::Strategy;
use multidim_bench::{dump_metrics, fmt_secs, print_table};
use multidim_workloads::apps::{msm, naive_bayes, qpscd};

fn main() {
    let mut rows = Vec::new();

    // QPSCD HogWild!: 768-dim problem, 2 epochs.
    {
        let (n, epochs) = (768, 2);
        let cpu = qpscd::cpu_seconds(n, epochs);
        let od = qpscd::run(Strategy::OneD, n, epochs)
            .expect("qpscd")
            .gpu_seconds;
        let md_run = qpscd::run(Strategy::MultiDim, n, epochs).expect("qpscd");
        dump_metrics("fig14_qpscd", &md_run.metrics);
        let md = md_run.gpu_seconds;
        rows.push(("QPSCD HogWild".to_string(), vec![1.0, od / cpu, md / cpu]));
        println!(
            "QPSCD: cpu {}  1D {}  MultiDim {}  (MultiDim {:.2}x over CPU, {:.2}x over 1D)",
            fmt_secs(cpu),
            fmt_secs(od),
            fmt_secs(md),
            cpu / md,
            od / md
        );
    }

    // MSMBuilder clustering: 256 frames x 96 clusters x 96 dims.
    {
        let (f, k, d) = (256, 96, 96);
        let cpu = msm::cpu_seconds(f, k, d);
        let od = msm::run(Strategy::OneD, f, k, d).expect("msm").gpu_seconds;
        let md_run = msm::run(Strategy::MultiDim, f, k, d).expect("msm");
        dump_metrics("fig14_msm", &md_run.metrics);
        let md = md_run.gpu_seconds;
        rows.push(("MSMBuilder".to_string(), vec![1.0, od / cpu, md / cpu]));
        println!(
            "MSM: cpu {}  1D {}  MultiDim {}  (MultiDim {:.2}x over CPU, {:.2}x over 1D)",
            fmt_secs(cpu),
            fmt_secs(od),
            fmt_secs(md),
            cpu / md,
            od / md
        );
    }

    // Naive Bayes training: 2048 docs x 8192 words (+ transfer).
    {
        let (docs, words) = (2048, 8192);
        let cpu = naive_bayes::cpu_seconds(docs, words);
        let od = naive_bayes::run(Strategy::OneD, docs, words).expect("nb");
        let md = naive_bayes::run(Strategy::MultiDim, docs, words).expect("nb");
        rows.push((
            "NaiveBayes".to_string(),
            vec![1.0, od.gpu_seconds / cpu, md.gpu_seconds / cpu],
        ));
        rows.push((
            "NaiveBayes (+transfer)".to_string(),
            vec![
                1.0,
                od.gpu_seconds_with_transfer / cpu,
                md.gpu_seconds_with_transfer / cpu,
            ],
        ));
        println!(
            "NB: cpu {}  MultiDim {} (+transfer {})  ({:.2}x over CPU, {:.2}x with transfer)",
            fmt_secs(cpu),
            fmt_secs(md.gpu_seconds),
            fmt_secs(md.gpu_seconds_with_transfer),
            cpu / md.gpu_seconds,
            cpu / md.gpu_seconds_with_transfer
        );
    }

    print_table(
        "Figure 14: normalized execution time (1.0 = multicore CPU)",
        &["CPU", "1D GPU", "MultiDim"],
        &rows,
    );
    println!("paper reference (normalized to CPU=1.0):");
    println!("  QPSCD: 1D 2.0, MultiDim 0.23 | MSM: 1D 3.6, MultiDim 0.4");
    println!("  NB: 1D 0.36, MultiDim 0.08; with transfer MultiDim 0.85");
}
