//! Ablation study of the design choices DESIGN.md calls out: what each
//! ingredient of the analysis/codegen buys, measured on the workloads that
//! exercise it. (Not a paper figure — supporting evidence for the paper's
//! design rationale.)
//!
//! * coalescing constraint weight → Figure 3's sumRows;
//! * ControlDOP (Split) → skewed sumCols;
//! * map→reduce fusion → the weighted-sum microbenchmark;
//! * §V-B shared-memory prefetch → an imperfect dot-product nest.

use multidim::prelude::*;
use multidim_bench::{fmt_secs, print_table};
use multidim_ir::ReduceOp;
use multidim_mapping::Weights;
use multidim_workloads::data;
use std::collections::HashMap;

fn sum_rows(r: i64, c: i64) -> (Program, Bindings, multidim_ir::ArrayId) {
    let mut b = ProgramBuilder::new("sumRows");
    let rs = b.sym("R");
    let cs = b.sym("C");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
    let root = b.map(Size::sym(rs), |b, row| {
        b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
            b.read(m, &[row.into(), col.into()])
        })
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(rs, r);
    bind.bind(cs, c);
    (p, bind, m)
}

fn time(
    compiler: &Compiler,
    p: &Program,
    bind: &Bindings,
    inputs: &HashMap<multidim_ir::ArrayId, Vec<f64>>,
) -> f64 {
    compiler
        .compile(p, bind)
        .unwrap()
        .run(inputs)
        .unwrap()
        .gpu_seconds
}

fn main() {
    let mut rows = Vec::new();

    // 1. Coalescing constraint: zero its weight and watch sumRows degrade.
    {
        let (p, bind, m) = sum_rows(2048, 2048);
        let inputs: HashMap<_, _> = [(m, data::matrix(2048, 2048, 1))].into_iter().collect();
        let with = time(&Compiler::new(), &p, &bind, &inputs);
        let without = time(
            &Compiler::new().weights(Weights {
                coalesce: 0.0,
                warp_multiple: 0.0,
                ..Weights::default()
            }),
            &p,
            &bind,
            &inputs,
        );
        rows.push((
            "no coalescing constraint".to_string(),
            vec![1.0, without / with],
        ));
        println!(
            "coalescing constraint: {} -> {}",
            fmt_secs(with),
            fmt_secs(without)
        );
    }

    // 2. ControlDOP: starved outer loop without Split.
    {
        // 4 rows: even 1024-wide blocks cannot reach MIN_DOP without Split.
        let (p, bind, m) = sum_rows(4, 131072);
        let inputs: HashMap<_, _> = [(m, data::matrix(4, 131072, 2))].into_iter().collect();
        let with = time(&Compiler::new(), &p, &bind, &inputs);
        // Disable Split by compiling the same program with the pre-DOP
        // mapping (span(all) kept).
        let gpu = GpuSpec::tesla_k20c();
        let analysis = multidim_mapping::analyze(&p, &bind, &gpu);
        let mut no_split = analysis.decision.clone();
        for l in 0..no_split.depth() {
            if matches!(no_split.level(l).span, Span::Split(_)) {
                no_split.level_mut(l).span = Span::All;
            }
        }
        let exe = Compiler::new()
            .compile_with_mapping(&p, &bind, no_split)
            .unwrap();
        let without = exe.run(&inputs).unwrap().gpu_seconds;
        rows.push(("no ControlDOP split".to_string(), vec![1.0, without / with]));
        println!(
            "ControlDOP split:      {} -> {}",
            fmt_secs(with),
            fmt_secs(without)
        );
    }

    // 3. Fusion: the Figure 15 weighted sum with/without map->reduce fusion.
    {
        use multidim_workloads::sums::{sum_weighted_program, SumKind};
        let (p, rs, cs, m, v) = sum_weighted_program(SumKind::Cols);
        let mut bind = Bindings::new();
        bind.bind(rs, 1024);
        bind.bind(cs, 1024);
        let inputs: HashMap<_, _> = [(m, data::matrix(1024, 1024, 3)), (v, data::vector(1024, 4))]
            .into_iter()
            .collect();
        let fused = time(&Compiler::new().fusion(true), &p, &bind, &inputs);
        let unfused = time(&Compiler::new().fusion(false), &p, &bind, &inputs);
        rows.push((
            "no fusion (materialize temp)".to_string(),
            vec![1.0, unfused / fused],
        ));
        println!(
            "fusion:                {} -> {}",
            fmt_secs(fused),
            fmt_secs(unfused)
        );
    }

    // 4. Shared-memory prefetch on an imperfect nest (outer-level read).
    {
        let mut b = ProgramBuilder::new("outer_read");
        let n = b.sym("N");
        let mm = b.sym("M");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
        let y = b.input("y", ScalarKind::F32, &[Size::sym(mm)]);
        let root = b.map(Size::sym(n), |b, i| {
            let xi = b.read(x, &[i.into()]);
            b.let_(xi, |b, a| {
                b.reduce(Size::sym(mm), ReduceOp::Add, |b, j| {
                    Expr::var(a) * b.read(y, &[j.into()])
                })
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 8192);
        bind.bind(mm, 128);
        let inputs: HashMap<_, _> = [(x, data::vector(8192, 5)), (y, data::vector(128, 6))]
            .into_iter()
            .collect();
        let on = time(
            &Compiler::new().options(CodegenOptions {
                smem_prefetch: true,
                ..Default::default()
            }),
            &p,
            &bind,
            &inputs,
        );
        let off = time(
            &Compiler::new().options(CodegenOptions {
                smem_prefetch: false,
                ..Default::default()
            }),
            &p,
            &bind,
            &inputs,
        );
        rows.push(("no smem prefetch".to_string(), vec![1.0, off / on]));
        println!(
            "smem prefetch:         {} -> {}",
            fmt_secs(on),
            fmt_secs(off)
        );
    }

    print_table(
        "Ablations: slowdown when each ingredient is removed (1.0 = full system)",
        &["full", "ablated"],
        &rows,
    );
    println!("note: the smem prefetch is near parity here — our coalescer already");
    println!("treats a warp's broadcast read of one outer element as a single");
    println!("transaction, which is most of what the prefetch saves on real Kepler.");
}
