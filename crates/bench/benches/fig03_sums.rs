//! Figure 3: `sumCols`/`sumRows` across matrix shapes and mapping
//! strategies, normalized to MultiDim.
//!
//! The paper uses 64M-element matrices ([64K,1K], [8K,8K], [1K,64K]); we
//! scale to 4M elements ([8K,512], [2K,2K], [512,8K]) — every reported
//! number is a ratio, which the scaling preserves. Expected shape: all
//! MultiDim times equal (the total element count is constant); 1D
//! collapses on skewed shapes (up to ~58× in the paper); warp-based is bad
//! on sumCols; thread-block/thread suffers on the 64K-outer shapes.

use multidim::prelude::Strategy;
use multidim_bench::{dump_metrics, fmt_secs, normalized, print_table};
use multidim_workloads::sums::{run_sum, SumKind};

fn main() {
    let shapes: [(usize, usize); 3] = [(8192, 512), (2048, 2048), (512, 8192)];
    let strategies = [
        Strategy::MultiDim,
        Strategy::OneD,
        Strategy::ThreadBlockThread,
        Strategy::WarpBased,
    ];

    let mut rows = Vec::new();
    let mut multidim_times = Vec::new();
    for kind in [SumKind::Cols, SumKind::Rows] {
        for (r, c) in shapes {
            let outcomes: Vec<_> = strategies
                .iter()
                .map(|&s| run_sum(kind, s, r, c).expect("sum run"))
                .collect();
            let times: Vec<f64> = outcomes.iter().map(|o| o.gpu_seconds).collect();
            multidim_times.push(times[0]);
            let name = if kind == SumKind::Cols {
                "sumCols"
            } else {
                "sumRows"
            };
            // With --report (or MULTIDIM_REPORT), dump the winning
            // (MultiDim) configuration's per-launch metrics.
            dump_metrics(&format!("fig03_{name}_{r}x{c}"), &outcomes[0].metrics);
            let label = format!(
                "{} [{}K,{}K]",
                name,
                (r as f64 / 1024.0),
                (c as f64 / 1024.0)
            );
            rows.push((label, normalized(&times, 0)));
        }
    }

    print_table(
        "Figure 3: normalized execution time (1.0 = MultiDim)",
        &["MultiDim", "1D", "TB/Thread", "Warp"],
        &rows,
    );
    println!(
        "MultiDim absolute times (should be nearly equal): {}",
        multidim_times
            .iter()
            .map(|&t| fmt_secs(t))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let worst = rows
        .iter()
        .flat_map(|(_, v)| v.iter())
        .fold(0.0f64, |a, &b| a.max(b));
    println!("worst fixed-strategy slowdown: {worst:.1}x (paper: up to 58x)");
}
