//! Service-layer throughput: cold (every request compiles) versus warm
//! (every request hits the content-addressed compilation cache).
//!
//! The workloads are scatter kernels with many distinct write sites: the
//! static-analysis stage of compilation proves the writes race-free with
//! a pairwise (quadratic) affine check, while executing them is linear —
//! so these requests are compile-dominated, exactly the regime the
//! compilation cache exists for. Warm throughput is asserted to be at
//! least 5x cold.
//!
//! Warm-round latencies are recorded into a `multidim-obs` histogram, so
//! the summary carries p50/p99/max tail latency alongside throughput.
//!
//! With `--report` (or `MULTIDIM_REPORT`), writes the summary to
//! `throughput.engine.json` — the schema the `check_regression` gate
//! compares against `BENCH_baseline.json`.

use multidim::Compiler;
use multidim_bench::{fmt_secs, print_table, report_requested};
use multidim_engine::{Engine, EngineConfig, Request};
use multidim_ir::{Bindings, Effect, Expr, ProgramBuilder, ScalarKind, Size};
use multidim_obs::Histogram;
use multidim_trace::json::Json;
use std::collections::HashMap;
use std::time::Instant;

const WARM_ROUNDS: usize = 20;

/// A foreach writing `k` provably-disjoint constant slots, named so each
/// `k` gets a distinct fingerprint.
fn scatter(k: usize) -> Request {
    let mut b = ProgramBuilder::new(format!("scatter{k}"));
    let out = b.output("out", ScalarKind::F32, &[Size::from(k as i64)]);
    let root = b.foreach(Size::from(1), |_, _| {
        (0..k)
            .map(|j| Effect::Write {
                cond: None,
                array: out,
                idx: vec![Expr::int(j as i64)],
                value: Expr::lit(j as f64),
            })
            .collect()
    });
    let program = b.finish_foreach(root).expect("scatter validates");
    Request::new(program, Bindings::new(), HashMap::new())
}

fn requests() -> Vec<Request> {
    (0..8).map(|i| scatter(400 + 40 * i)).collect()
}

fn engine() -> Engine {
    Engine::new(
        Compiler::new(),
        EngineConfig {
            queue_capacity: 64,
            cache_capacity: 64,
            store_path: None,
            ..EngineConfig::default()
        },
    )
}

fn main() {
    let reqs = requests();
    let k = reqs.len();

    // Cold: a fresh engine per pass, so every request compiles. Median of
    // five passes.
    let mut cold_samples: Vec<f64> = (0..5)
        .map(|_| {
            let e = engine();
            let start = Instant::now();
            let results = e.run_batch(reqs.clone());
            let dt = start.elapsed().as_secs_f64();
            assert!(results.iter().all(Result::is_ok), "cold pass must succeed");
            assert_eq!(e.cache_stats().misses as usize, k);
            dt
        })
        .collect();
    cold_samples.sort_by(f64::total_cmp);
    let cold_secs = cold_samples[cold_samples.len() / 2];
    let cold_rps = k as f64 / cold_secs;

    // Warm: one engine, primed once, then timed rounds that only hit the
    // cache. Per-request latency (queue wait + service) goes into a
    // log-bucketed histogram for the tail-latency gate.
    let e = engine();
    let prime = e.run_batch(reqs.clone());
    assert!(prime.iter().all(Result::is_ok), "priming must succeed");
    let latency = Histogram::new();
    let start = Instant::now();
    for _ in 0..WARM_ROUNDS {
        let results = e.run_batch(reqs.clone());
        for r in &results {
            let resp = r.as_ref().expect("warm pass must succeed");
            latency.record((resp.queue_wait + resp.service_time).as_secs_f64());
        }
    }
    let warm_secs = start.elapsed().as_secs_f64();
    let warm_rps = (WARM_ROUNDS * k) as f64 / warm_secs;
    let stats = e.cache_stats();
    assert_eq!(
        stats.misses as usize, k,
        "warm rounds must never compile: one miss per distinct program"
    );
    assert_eq!(stats.hits as usize, WARM_ROUNDS * k);

    let speedup = warm_rps / cold_rps;
    let snap = latency.snapshot();
    let us = |q: f64| snap.quantile(q).unwrap_or(f64::NAN) * 1e6;
    let (p50_us, p99_us, max_us) = (us(0.5), us(0.99), us(1.0));
    print_table(
        "engine throughput (requests/sec)",
        &["cold", "warm", "speedup"],
        &[(
            format!("{k} scatters x {WARM_ROUNDS} rounds"),
            vec![cold_rps, warm_rps, speedup],
        )],
    );
    println!(
        "  cold pass {}  |  warm round {}  |  warm latency p50 {:.1} µs  p99 {:.1} µs  max {:.1} µs",
        fmt_secs(cold_secs),
        fmt_secs(warm_secs / WARM_ROUNDS as f64),
        p50_us,
        p99_us,
        max_us,
    );

    if report_requested() {
        let num = |v: f64| Json::Num((v * 1000.0).round() / 1000.0);
        let body = Json::Obj(vec![
            ("cold_rps".to_string(), num(cold_rps)),
            ("warm_rps".to_string(), num(warm_rps)),
            ("speedup".to_string(), num(speedup)),
            ("p50_us".to_string(), num(p50_us)),
            ("p99_us".to_string(), num(p99_us)),
            ("max_us".to_string(), num(max_us)),
            ("requests".to_string(), Json::Num(k as f64)),
            ("warm_rounds".to_string(), Json::Num(WARM_ROUNDS as f64)),
            ("cache_hits".to_string(), Json::Num(stats.hits as f64)),
            ("cache_misses".to_string(), Json::Num(stats.misses as f64)),
        ])
        .render();
        let path = "throughput.engine.json";
        match std::fs::write(path, body) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(err) => eprintln!("failed to write {path}: {err}"),
        }
    }

    assert!(
        speedup >= 5.0,
        "warm-cache throughput must be at least 5x cold (got {speedup:.2}x)"
    );
}
