//! Device portability: the same program maps differently on different
//! devices (the point of parameterizing the analysis by `GpuSpec` —
//! "programmers are no longer required to write their application in a
//! specific way to maximize the performance on different targets").
//!
//! Compares the decisions and simulated times of the K20c (Kepler) and
//! C2050 (Fermi) models on a starved reduce (where `MIN_DOP` differs) and
//! on sumRows.

use multidim::prelude::*;
use multidim_bench::fmt_secs;
use multidim_ir::ReduceOp;
use multidim_workloads::data;
use std::collections::HashMap;

fn sum_rows(r: i64, c: i64) -> (Program, Bindings, multidim_ir::ArrayId) {
    let mut b = ProgramBuilder::new("sumRows");
    let rs = b.sym("R");
    let cs = b.sym("C");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
    let root = b.map(Size::sym(rs), |b, row| {
        b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
            b.read(m, &[row.into(), col.into()])
        })
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(rs, r);
    bind.bind(cs, c);
    (p, bind, m)
}

fn main() {
    for (label, gpu) in [
        ("Tesla K20c", GpuSpec::tesla_k20c()),
        ("Tesla C2050", GpuSpec::tesla_c2050()),
    ] {
        println!("\n--- {label} (MIN_DOP = {}) ---", gpu.min_dop());
        for (r, c) in [(4096i64, 1024i64), (8, 262_144)] {
            let (p, bind, m) = sum_rows(r, c);
            let exe = Compiler::new().gpu(gpu.clone()).compile(&p, &bind).unwrap();
            let inputs: HashMap<_, _> = [(m, data::matrix(r as usize, c as usize, 9))]
                .into_iter()
                .collect();
            let t = exe.run(&inputs).unwrap().gpu_seconds;
            println!("  sumRows [{r},{c}]: {} -> {}", exe.mapping, fmt_secs(t));
        }
    }
    println!("\nThe starved shape (8 rows) receives a different split factor per");
    println!("device because MIN_DOP differs; the regular shape maps identically.");
}
