//! A process-local metrics registry: named counters, gauges, and
//! histograms, with Prometheus-style text exposition and JSON export.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s returned by
//! the registration methods; record through the handle on hot paths (no
//! registry lock), read everything at once through
//! [`Registry::render_text`] / [`Registry::to_json`]. Registration is
//! get-or-create: registering the same name twice returns the same
//! handle, so independent subsystems can share a metric by name.
//! Metrics render in lexicographic name order, making the exposition
//! deterministic (and golden-testable).

use crate::hist::Histogram;
use multidim_trace::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A labelled family of counters: one metric name, one label key, one
/// child [`Counter`] per label value (e.g. `engine_shed_total{workload="bfs"}`).
///
/// Children are get-or-create through [`CounterFamily::with`]; handles are
/// `Arc`s, so hot paths resolve the child once and record lock-free.
pub struct CounterFamily {
    label: String,
    children: Mutex<BTreeMap<String, Arc<Counter>>>,
}

impl CounterFamily {
    fn new(label: &str) -> CounterFamily {
        CounterFamily {
            label: label.to_string(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The family's label key (e.g. `"workload"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get or create the child counter for `value`.
    pub fn with(&self, value: &str) -> Arc<Counter> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.entry(value.to_string()).or_default().clone()
    }

    /// Every child's `(label value, count)`, in label order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.iter().map(|(k, c)| (k.clone(), c.get())).collect()
    }

    /// Sum over all children.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().map(|(_, v)| v).sum()
    }
}

/// A labelled family of gauges: one metric name, one label key, one
/// child [`Gauge`] per label value (e.g.
/// `serve_shard_queue_depth{shard="2"}` — the per-shard overload view of
/// a sharded front door).
///
/// Children are get-or-create through [`GaugeFamily::with`]; handles are
/// `Arc`s, so samplers resolve the child once and set lock-free.
pub struct GaugeFamily {
    label: String,
    children: Mutex<BTreeMap<String, Arc<Gauge>>>,
}

impl GaugeFamily {
    fn new(label: &str) -> GaugeFamily {
        GaugeFamily {
            label: label.to_string(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The family's label key (e.g. `"shard"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get or create the child gauge for `value`.
    pub fn with(&self, value: &str) -> Arc<Gauge> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.entry(value.to_string()).or_default().clone()
    }

    /// Every child's `(label value, current value)`, in label order.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.iter().map(|(k, g)| (k.clone(), g.get())).collect()
    }

    /// Sum over all children (e.g. fleet-wide queue depth).
    pub fn total(&self) -> f64 {
        self.snapshot().iter().map(|(_, v)| v).sum()
    }
}

/// A labelled family of histograms: one child [`Histogram`] per label
/// value, sharing the log-bucketed layout (so per-label and merged views
/// agree on bucketing error).
pub struct HistogramFamily {
    label: String,
    children: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl HistogramFamily {
    fn new(label: &str) -> HistogramFamily {
        HistogramFamily {
            label: label.to_string(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The family's label key (e.g. `"workload"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get or create the child histogram for `value`.
    pub fn with(&self, value: &str) -> Arc<Histogram> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children
            .entry(value.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Every child's `(label value, snapshot)`, in label order.
    pub fn snapshot(&self) -> Vec<(String, crate::hist::HistogramSnapshot)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }

    /// All children merged into one snapshot (exact: identical layouts).
    pub fn merged(&self) -> crate::hist::HistogramSnapshot {
        let mut out = crate::hist::HistogramSnapshot::new();
        for (_, snap) in self.snapshot() {
            out.merge(&snap);
        }
        out
    }
}

/// Escape a label value for the text exposition (`\` and `"`).
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFamily(Arc<CounterFamily>),
    GaugeFamily(Arc<GaugeFamily>),
    HistogramFamily(Arc<HistogramFamily>),
}

struct Entry {
    help: String,
    metric: Metric,
}

/// The quantiles a histogram exposes, matching the summary lines in
/// [`Registry::render_text`].
pub const QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// JSON field names for [`QUANTILES`], in the same order.
const QUANTILE_LABELS: [&str; 4] = ["p50", "p90", "p99", "p999"];

/// A named collection of metrics. Cheap to clone handles out of; share
/// the registry itself behind an [`Arc`].
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`. Panics if `name` is already
    /// registered as a different metric kind (a programming error: two
    /// subsystems disagree about what the name means).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Counter(Arc::new(Counter::default())),
        });
        match &e.metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is registered as a non-counter"),
        }
    }

    /// Get or create the gauge `name` (same conflict rule as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Gauge(Arc::new(Gauge::default())),
        });
        match &e.metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is registered as a non-gauge"),
        }
    }

    /// Get or create the histogram `name` (same conflict rule as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Histogram(Arc::new(Histogram::new())),
        });
        match &e.metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is registered as a non-histogram"),
        }
    }

    /// Get or create the counter family `name` labelled by `label` (same
    /// conflict rule as [`Registry::counter`]; the label key of an existing
    /// family wins).
    pub fn counter_family(&self, name: &str, help: &str, label: &str) -> Arc<CounterFamily> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::CounterFamily(Arc::new(CounterFamily::new(label))),
        });
        match &e.metric {
            Metric::CounterFamily(f) => f.clone(),
            _ => panic!("metric `{name}` is registered as a non-counter-family"),
        }
    }

    /// Get or create the gauge family `name` labelled by `label` (same
    /// conflict rule as [`Registry::counter_family`]).
    pub fn gauge_family(&self, name: &str, help: &str, label: &str) -> Arc<GaugeFamily> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::GaugeFamily(Arc::new(GaugeFamily::new(label))),
        });
        match &e.metric {
            Metric::GaugeFamily(f) => f.clone(),
            _ => panic!("metric `{name}` is registered as a non-gauge-family"),
        }
    }

    /// Get or create the histogram family `name` labelled by `label`
    /// (same conflict rule as [`Registry::counter_family`]).
    pub fn histogram_family(&self, name: &str, help: &str, label: &str) -> Arc<HistogramFamily> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::HistogramFamily(Arc::new(HistogramFamily::new(label))),
        });
        match &e.metric {
            Metric::HistogramFamily(f) => f.clone(),
            _ => panic!("metric `{name}` is registered as a non-histogram-family"),
        }
    }

    /// Prometheus-style text exposition. Counters and gauges render one
    /// sample line; histograms render as summaries — one
    /// `name{quantile="…"}` line per entry of [`QUANTILES`] plus
    /// `name_sum` and `name_count`. Families render one such block per
    /// child with the family label prepended. Metrics appear in name
    /// order; family children in label order.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.lock();
        let mut out = String::new();
        for (name, e) in entries.iter() {
            let _ = writeln!(out, "# HELP {name} {}", e.help);
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    let snap = h.snapshot();
                    for q in QUANTILES {
                        let v = snap.quantile(q).unwrap_or(f64::NAN);
                        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                    }
                    let _ = writeln!(out, "{name}_sum {}", snap.sum());
                    let _ = writeln!(out, "{name}_count {}", snap.count());
                }
                Metric::CounterFamily(f) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let key = f.label();
                    for (value, count) in f.snapshot() {
                        let _ =
                            writeln!(out, "{name}{{{key}=\"{}\"}} {count}", escape_label(&value));
                    }
                }
                Metric::GaugeFamily(f) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let key = f.label();
                    for (value, v) in f.snapshot() {
                        let _ = writeln!(out, "{name}{{{key}=\"{}\"}} {v}", escape_label(&value));
                    }
                }
                Metric::HistogramFamily(f) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    let key = f.label();
                    for (value, snap) in f.snapshot() {
                        let value = escape_label(&value);
                        for q in QUANTILES {
                            let v = snap.quantile(q).unwrap_or(f64::NAN);
                            let _ =
                                writeln!(out, "{name}{{{key}=\"{value}\",quantile=\"{q}\"}} {v}");
                        }
                        let _ = writeln!(out, "{name}_sum{{{key}=\"{value}\"}} {}", snap.sum());
                        let _ = writeln!(out, "{name}_count{{{key}=\"{value}\"}} {}", snap.count());
                    }
                }
            }
        }
        out
    }

    /// JSON export: one object keyed by metric name. Counters and gauges
    /// export their value; histograms export count/sum/min/max/mean and
    /// the [`QUANTILES`] (as `"p50"`, `"p90"`, `"p99"`, `"p999"`);
    /// families export one object keyed by label value.
    pub fn to_json(&self) -> Json {
        let entries = self.lock();
        let mut fields = Vec::new();
        for (name, e) in entries.iter() {
            let value = match &e.metric {
                Metric::Counter(c) => Json::Num(c.get() as f64),
                Metric::Gauge(g) => Json::Num(g.get()),
                Metric::Histogram(h) => snapshot_json(&h.snapshot()),
                Metric::CounterFamily(f) => Json::Obj(
                    f.snapshot()
                        .into_iter()
                        .map(|(k, v)| (k, Json::Num(v as f64)))
                        .collect(),
                ),
                Metric::GaugeFamily(f) => Json::Obj(
                    f.snapshot()
                        .into_iter()
                        .map(|(k, v)| (k, Json::Num(v)))
                        .collect(),
                ),
                Metric::HistogramFamily(f) => Json::Obj(
                    f.snapshot()
                        .into_iter()
                        .map(|(k, snap)| (k, snapshot_json(&snap)))
                        .collect(),
                ),
            };
            fields.push((name.clone(), value));
        }
        Json::Obj(fields)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The JSON shape shared by plain histograms and family children:
/// count/sum/min/max/mean plus the [`QUANTILES`].
fn snapshot_json(snap: &crate::hist::HistogramSnapshot) -> Json {
    let mut obj = vec![
        ("count".to_string(), Json::Num(snap.count() as f64)),
        ("sum".to_string(), Json::Num(snap.sum())),
    ];
    if let (Some(min), Some(max), Some(mean)) = (snap.min(), snap.max(), snap.mean()) {
        obj.push(("min".to_string(), Json::Num(min)));
        obj.push(("max".to_string(), Json::Num(max)));
        obj.push(("mean".to_string(), Json::Num(mean)));
    }
    for (q, label) in QUANTILES.iter().zip(QUANTILE_LABELS) {
        if let Some(v) = snap.quantile(*q) {
            obj.push((label.to_string(), Json::Num(v)));
        }
    }
    Json::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("requests_total", "requests");
        let b = r.counter("requests_total", "ignored duplicate help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit the same counter");
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.gauge("x", "a gauge");
        r.counter("x", "not a counter");
    }

    #[test]
    fn golden_text_exposition() {
        // The exact exposition format is a contract (scrapers parse it):
        // pin it with a golden string. The histogram holds one distinct
        // value so every quantile is exact and the output is stable.
        let r = Registry::new();
        r.counter("engine_requests_total", "requests accepted")
            .add(7);
        r.gauge("engine_queue_depth", "requests waiting").set(2.5);
        let h = r.histogram("engine_request_seconds", "request latency");
        h.record(2.0);
        h.record(2.0);
        let expected = "\
# HELP engine_queue_depth requests waiting
# TYPE engine_queue_depth gauge
engine_queue_depth 2.5
# HELP engine_request_seconds request latency
# TYPE engine_request_seconds summary
engine_request_seconds{quantile=\"0.5\"} 2
engine_request_seconds{quantile=\"0.9\"} 2
engine_request_seconds{quantile=\"0.99\"} 2
engine_request_seconds{quantile=\"0.999\"} 2
engine_request_seconds_sum 4
engine_request_seconds_count 2
# HELP engine_requests_total requests accepted
# TYPE engine_requests_total counter
engine_requests_total 7
";
        assert_eq!(r.render_text(), expected);
    }

    #[test]
    fn empty_histogram_renders_nan_quantiles() {
        let r = Registry::new();
        r.histogram("h", "empty");
        let text = r.render_text();
        assert!(text.contains("h{quantile=\"0.5\"} NaN"), "{text}");
        assert!(text.contains("h_count 0"), "{text}");
    }

    #[test]
    fn counter_family_renders_one_line_per_child() {
        let r = Registry::new();
        let shed = r.counter_family("engine_shed_total", "sheds by workload", "workload");
        shed.with("bfs").add(3);
        shed.with("spmv").inc();
        shed.with("bfs").inc(); // same child again
        assert_eq!(shed.total(), 5);
        let text = r.render_text();
        assert!(text.contains("# TYPE engine_shed_total counter"), "{text}");
        assert!(
            text.contains("engine_shed_total{workload=\"bfs\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("engine_shed_total{workload=\"spmv\"} 1"),
            "{text}"
        );
        let j = r.to_json();
        let fam = j.get("engine_shed_total").expect("family object");
        assert_eq!(fam.get("bfs").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn histogram_family_merged_equals_children() {
        let r = Registry::new();
        let lat = r.histogram_family("lat", "latency by workload", "workload");
        for i in 1..=50 {
            lat.with("a").record(i as f64);
        }
        for i in 51..=100 {
            lat.with("b").record(i as f64);
        }
        let merged = lat.merged();
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.min(), Some(1.0));
        assert_eq!(merged.max(), Some(100.0));
        let text = r.render_text();
        assert!(
            text.contains("lat{workload=\"a\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("lat_count{workload=\"b\"} 50"), "{text}");
    }

    #[test]
    fn gauge_family_renders_one_line_per_child() {
        let r = Registry::new();
        let depth = r.gauge_family("serve_shard_queue_depth", "queue depth by shard", "shard");
        depth.with("0").set(3.0);
        depth.with("1").set(1.5);
        depth.with("0").set(4.0); // same child: last set wins
        assert_eq!(depth.total(), 5.5);
        assert_eq!(depth.label(), "shard");
        let text = r.render_text();
        assert!(
            text.contains("# TYPE serve_shard_queue_depth gauge"),
            "{text}"
        );
        assert!(
            text.contains("serve_shard_queue_depth{shard=\"0\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("serve_shard_queue_depth{shard=\"1\"} 1.5"),
            "{text}"
        );
        let j = r.to_json();
        let fam = j.get("serve_shard_queue_depth").expect("family object");
        assert_eq!(fam.get("1").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "non-gauge-family")]
    fn gauge_family_kind_conflicts_panic() {
        let r = Registry::new();
        r.gauge("x", "a gauge");
        r.gauge_family("x", "not a family", "k");
    }

    #[test]
    fn label_values_are_escaped_in_text() {
        let r = Registry::new();
        r.counter_family("c", "family", "k").with("a\"b\\c").inc();
        let text = r.render_text();
        assert!(text.contains("c{k=\"a\\\"b\\\\c\"} 1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "non-counter-family")]
    fn family_kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x", "a counter");
        r.counter_family("x", "not a family", "k");
    }

    #[test]
    fn json_export_shape() {
        let r = Registry::new();
        r.counter("c", "counter").add(3);
        r.gauge("g", "gauge").set(1.5);
        let h = r.histogram("h", "hist");
        for i in 1..=100 {
            h.record(i as f64);
        }
        let j = r.to_json();
        assert_eq!(j.get("c").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("g").and_then(Json::as_f64), Some(1.5));
        let hj = j.get("h").expect("histogram object");
        assert_eq!(hj.get("count").and_then(Json::as_u64), Some(100));
        assert!(hj.get("p99").and_then(Json::as_f64).is_some());
        // The export is valid JSON end to end.
        Json::parse(&j.render()).expect("round-trips");
    }
}
