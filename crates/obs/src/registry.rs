//! A process-local metrics registry: named counters, gauges, and
//! histograms, with Prometheus-style text exposition and JSON export.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s returned by
//! the registration methods; record through the handle on hot paths (no
//! registry lock), read everything at once through
//! [`Registry::render_text`] / [`Registry::to_json`]. Registration is
//! get-or-create: registering the same name twice returns the same
//! handle, so independent subsystems can share a metric by name.
//! Metrics render in lexicographic name order, making the exposition
//! deterministic (and golden-testable).

use crate::hist::Histogram;
use multidim_trace::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A labelled family of counters: one metric name, one label key, one
/// child [`Counter`] per label value (e.g. `engine_shed_total{workload="bfs"}`).
///
/// Children are get-or-create through [`CounterFamily::with`]; handles are
/// `Arc`s, so hot paths resolve the child once and record lock-free.
pub struct CounterFamily {
    label: String,
    children: Mutex<BTreeMap<String, Arc<Counter>>>,
}

impl CounterFamily {
    fn new(label: &str) -> CounterFamily {
        CounterFamily {
            label: label.to_string(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The family's label key (e.g. `"workload"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get or create the child counter for `value`.
    pub fn with(&self, value: &str) -> Arc<Counter> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.entry(value.to_string()).or_default().clone()
    }

    /// Every child's `(label value, count)`, in label order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.iter().map(|(k, c)| (k.clone(), c.get())).collect()
    }

    /// Sum over all children.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().map(|(_, v)| v).sum()
    }
}

/// A labelled family of gauges: one metric name, one label key, one
/// child [`Gauge`] per label value (e.g.
/// `serve_shard_queue_depth{shard="2"}` — the per-shard overload view of
/// a sharded front door).
///
/// Children are get-or-create through [`GaugeFamily::with`]; handles are
/// `Arc`s, so samplers resolve the child once and set lock-free.
pub struct GaugeFamily {
    label: String,
    children: Mutex<BTreeMap<String, Arc<Gauge>>>,
}

impl GaugeFamily {
    fn new(label: &str) -> GaugeFamily {
        GaugeFamily {
            label: label.to_string(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The family's label key (e.g. `"shard"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get or create the child gauge for `value`.
    pub fn with(&self, value: &str) -> Arc<Gauge> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.entry(value.to_string()).or_default().clone()
    }

    /// Every child's `(label value, current value)`, in label order.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children.iter().map(|(k, g)| (k.clone(), g.get())).collect()
    }

    /// Sum over all children (e.g. fleet-wide queue depth).
    pub fn total(&self) -> f64 {
        self.snapshot().iter().map(|(_, v)| v).sum()
    }
}

/// A labelled family of histograms: one child [`Histogram`] per label
/// value, sharing the log-bucketed layout (so per-label and merged views
/// agree on bucketing error).
pub struct HistogramFamily {
    label: String,
    children: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl HistogramFamily {
    fn new(label: &str) -> HistogramFamily {
        HistogramFamily {
            label: label.to_string(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The family's label key (e.g. `"workload"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get or create the child histogram for `value`.
    pub fn with(&self, value: &str) -> Arc<Histogram> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children
            .entry(value.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Every child's `(label value, snapshot)`, in label order.
    pub fn snapshot(&self) -> Vec<(String, crate::hist::HistogramSnapshot)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }

    /// Every child's `(label value, handle)`, in label order — for
    /// readers that need more than a snapshot (e.g. exemplars).
    pub fn children(&self) -> Vec<(String, Arc<Histogram>)> {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        children
            .iter()
            .map(|(k, h)| (k.clone(), h.clone()))
            .collect()
    }

    /// All children merged into one snapshot (exact: identical layouts).
    pub fn merged(&self) -> crate::hist::HistogramSnapshot {
        let mut out = crate::hist::HistogramSnapshot::new();
        for (_, snap) in self.snapshot() {
            out.merge(&snap);
        }
        out
    }
}

/// Escape a label value for the text exposition (`\` and `"`).
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFamily(Arc<CounterFamily>),
    GaugeFamily(Arc<GaugeFamily>),
    HistogramFamily(Arc<HistogramFamily>),
}

struct Entry {
    help: String,
    metric: Metric,
}

/// The quantiles a histogram exposes, matching the summary lines in
/// [`Registry::render_text`].
pub const QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// JSON field names for [`QUANTILES`], in the same order.
const QUANTILE_LABELS: [&str; 4] = ["p50", "p90", "p99", "p999"];

/// A named collection of metrics. Cheap to clone handles out of; share
/// the registry itself behind an [`Arc`].
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`. Panics if `name` is already
    /// registered as a different metric kind (a programming error: two
    /// subsystems disagree about what the name means).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Counter(Arc::new(Counter::default())),
        });
        match &e.metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is registered as a non-counter"),
        }
    }

    /// Get or create the gauge `name` (same conflict rule as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Gauge(Arc::new(Gauge::default())),
        });
        match &e.metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is registered as a non-gauge"),
        }
    }

    /// Get or create the histogram `name` (same conflict rule as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Histogram(Arc::new(Histogram::new())),
        });
        match &e.metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is registered as a non-histogram"),
        }
    }

    /// Get or create the counter family `name` labelled by `label` (same
    /// conflict rule as [`Registry::counter`]; the label key of an existing
    /// family wins).
    pub fn counter_family(&self, name: &str, help: &str, label: &str) -> Arc<CounterFamily> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::CounterFamily(Arc::new(CounterFamily::new(label))),
        });
        match &e.metric {
            Metric::CounterFamily(f) => f.clone(),
            _ => panic!("metric `{name}` is registered as a non-counter-family"),
        }
    }

    /// Get or create the gauge family `name` labelled by `label` (same
    /// conflict rule as [`Registry::counter_family`]).
    pub fn gauge_family(&self, name: &str, help: &str, label: &str) -> Arc<GaugeFamily> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::GaugeFamily(Arc::new(GaugeFamily::new(label))),
        });
        match &e.metric {
            Metric::GaugeFamily(f) => f.clone(),
            _ => panic!("metric `{name}` is registered as a non-gauge-family"),
        }
    }

    /// Get or create the histogram family `name` labelled by `label`
    /// (same conflict rule as [`Registry::counter_family`]).
    pub fn histogram_family(&self, name: &str, help: &str, label: &str) -> Arc<HistogramFamily> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::HistogramFamily(Arc::new(HistogramFamily::new(label))),
        });
        match &e.metric {
            Metric::HistogramFamily(f) => f.clone(),
            _ => panic!("metric `{name}` is registered as a non-histogram-family"),
        }
    }

    /// Prometheus-style text exposition. Counters and gauges render one
    /// sample line; histograms render as summaries — one
    /// `name{quantile="…"}` line per entry of [`QUANTILES`] plus
    /// `name_sum` and `name_count`. Families render one such block per
    /// child with the family label prepended. Metrics appear in name
    /// order; family children in label order.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.lock();
        let mut out = String::new();
        for (name, e) in entries.iter() {
            let _ = writeln!(out, "# HELP {name} {}", e.help);
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    let snap = h.snapshot();
                    for q in QUANTILES {
                        let v = snap.quantile(q).unwrap_or(f64::NAN);
                        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                    }
                    let _ = writeln!(out, "{name}_sum {}", snap.sum());
                    let _ = writeln!(out, "{name}_count {}", snap.count());
                    for (bucket, ex) in h.exemplars() {
                        let _ = writeln!(
                            out,
                            "{name}_exemplar{{bucket=\"{bucket}\",trace_id=\"{}\"}} {}",
                            ex.trace_hex(),
                            ex.value
                        );
                    }
                }
                Metric::CounterFamily(f) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let key = f.label();
                    for (value, count) in f.snapshot() {
                        let _ =
                            writeln!(out, "{name}{{{key}=\"{}\"}} {count}", escape_label(&value));
                    }
                }
                Metric::GaugeFamily(f) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let key = f.label();
                    for (value, v) in f.snapshot() {
                        let _ = writeln!(out, "{name}{{{key}=\"{}\"}} {v}", escape_label(&value));
                    }
                }
                Metric::HistogramFamily(f) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    let key = f.label();
                    for (value, child) in f.children() {
                        let snap = child.snapshot();
                        let value = escape_label(&value);
                        for q in QUANTILES {
                            let v = snap.quantile(q).unwrap_or(f64::NAN);
                            let _ =
                                writeln!(out, "{name}{{{key}=\"{value}\",quantile=\"{q}\"}} {v}");
                        }
                        let _ = writeln!(out, "{name}_sum{{{key}=\"{value}\"}} {}", snap.sum());
                        let _ = writeln!(out, "{name}_count{{{key}=\"{value}\"}} {}", snap.count());
                        for (bucket, ex) in child.exemplars() {
                            let _ = writeln!(
                                out,
                                "{name}_exemplar{{{key}=\"{value}\",bucket=\"{bucket}\",trace_id=\"{}\"}} {}",
                                ex.trace_hex(),
                                ex.value
                            );
                        }
                    }
                }
            }
        }
        out
    }

    /// JSON export: one object keyed by metric name. Counters and gauges
    /// export their value; histograms export count/sum/min/max/mean and
    /// the [`QUANTILES`] (as `"p50"`, `"p90"`, `"p99"`, `"p999"`);
    /// families export one object keyed by label value.
    pub fn to_json(&self) -> Json {
        let entries = self.lock();
        let mut fields = Vec::new();
        for (name, e) in entries.iter() {
            let value = match &e.metric {
                Metric::Counter(c) => Json::Num(c.get() as f64),
                Metric::Gauge(g) => Json::Num(g.get()),
                Metric::Histogram(h) => histogram_json(h),
                Metric::CounterFamily(f) => Json::Obj(
                    f.snapshot()
                        .into_iter()
                        .map(|(k, v)| (k, Json::Num(v as f64)))
                        .collect(),
                ),
                Metric::GaugeFamily(f) => Json::Obj(
                    f.snapshot()
                        .into_iter()
                        .map(|(k, v)| (k, Json::Num(v)))
                        .collect(),
                ),
                Metric::HistogramFamily(f) => Json::Obj(
                    f.children()
                        .into_iter()
                        .map(|(k, child)| (k, histogram_json(&child)))
                        .collect(),
                ),
            };
            fields.push((name.clone(), value));
        }
        Json::Obj(fields)
    }

    /// The current scalar value of the metric `name`, for alert-rule
    /// evaluation over *any* registered metric: counters and counter
    /// families read their (total) count, gauges and gauge families
    /// their (total) value, histograms and histogram families the
    /// `quantile` estimate (default p99) of everything recorded.
    /// `None` when the metric does not exist or the histogram is empty.
    pub fn value(&self, name: &str, quantile: Option<f64>) -> Option<f64> {
        let entries = self.lock();
        match &entries.get(name)?.metric {
            Metric::Counter(c) => Some(c.get() as f64),
            Metric::Gauge(g) => Some(g.get()),
            Metric::Histogram(h) => h.snapshot().quantile(quantile.unwrap_or(0.99)),
            Metric::CounterFamily(f) => Some(f.total() as f64),
            Metric::GaugeFamily(f) => Some(f.total()),
            Metric::HistogramFamily(f) => f.merged().quantile(quantile.unwrap_or(0.99)),
        }
    }

    /// A registered plain histogram's handle, without creating one.
    pub fn find_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        let entries = self.lock();
        match &entries.get(name)?.metric {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        }
    }

    /// Up to `cap` exemplar trace ids for the metric `name` (a histogram
    /// or histogram family), highest bucket first — the tail end, where
    /// alert-worthy samples live. Used to attach trace links to alert
    /// events.
    pub fn tail_exemplars(&self, name: &str, cap: usize) -> Vec<crate::hist::Exemplar> {
        let entries = self.lock();
        let mut all: Vec<(usize, crate::hist::Exemplar)> = match entries.get(name) {
            Some(Entry {
                metric: Metric::Histogram(h),
                ..
            }) => h.exemplars(),
            Some(Entry {
                metric: Metric::HistogramFamily(f),
                ..
            }) => f
                .children()
                .into_iter()
                .flat_map(|(_, child)| child.exemplars())
                .collect(),
            _ => return Vec::new(),
        };
        all.sort_by_key(|(bucket, _)| std::cmp::Reverse(*bucket));
        let mut seen = std::collections::BTreeSet::new();
        all.into_iter()
            .filter(|(_, e)| seen.insert(e.trace_id))
            .take(cap)
            .map(|(_, e)| e)
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// [`snapshot_json`] plus an `"exemplars"` array (present only when the
/// histogram holds exemplars, keeping exemplar-free exports unchanged).
fn histogram_json(h: &Histogram) -> Json {
    let mut j = snapshot_json(&h.snapshot());
    let exemplars = h.exemplars();
    if !exemplars.is_empty() {
        if let Json::Obj(fields) = &mut j {
            fields.push((
                "exemplars".to_string(),
                Json::Arr(
                    exemplars
                        .into_iter()
                        .map(|(bucket, ex)| {
                            Json::Obj(vec![
                                ("bucket".to_string(), Json::Num(bucket as f64)),
                                ("trace_id".to_string(), Json::Str(ex.trace_hex())),
                                ("value".to_string(), Json::Num(ex.value)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
    }
    j
}

/// The JSON shape shared by plain histograms and family children:
/// count/sum/min/max/mean plus the [`QUANTILES`].
fn snapshot_json(snap: &crate::hist::HistogramSnapshot) -> Json {
    let mut obj = vec![
        ("count".to_string(), Json::Num(snap.count() as f64)),
        ("sum".to_string(), Json::Num(snap.sum())),
    ];
    if let (Some(min), Some(max), Some(mean)) = (snap.min(), snap.max(), snap.mean()) {
        obj.push(("min".to_string(), Json::Num(min)));
        obj.push(("max".to_string(), Json::Num(max)));
        obj.push(("mean".to_string(), Json::Num(mean)));
    }
    for (q, label) in QUANTILES.iter().zip(QUANTILE_LABELS) {
        if let Some(v) = snap.quantile(*q) {
            obj.push((label.to_string(), Json::Num(v)));
        }
    }
    Json::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("requests_total", "requests");
        let b = r.counter("requests_total", "ignored duplicate help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit the same counter");
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.gauge("x", "a gauge");
        r.counter("x", "not a counter");
    }

    #[test]
    fn golden_text_exposition() {
        // The exact exposition format is a contract (scrapers parse it):
        // pin it with a golden string. The histogram holds one distinct
        // value so every quantile is exact and the output is stable.
        let r = Registry::new();
        r.counter("engine_requests_total", "requests accepted")
            .add(7);
        r.gauge("engine_queue_depth", "requests waiting").set(2.5);
        let h = r.histogram("engine_request_seconds", "request latency");
        h.record(2.0);
        h.record(2.0);
        let expected = "\
# HELP engine_queue_depth requests waiting
# TYPE engine_queue_depth gauge
engine_queue_depth 2.5
# HELP engine_request_seconds request latency
# TYPE engine_request_seconds summary
engine_request_seconds{quantile=\"0.5\"} 2
engine_request_seconds{quantile=\"0.9\"} 2
engine_request_seconds{quantile=\"0.99\"} 2
engine_request_seconds{quantile=\"0.999\"} 2
engine_request_seconds_sum 4
engine_request_seconds_count 2
# HELP engine_requests_total requests accepted
# TYPE engine_requests_total counter
engine_requests_total 7
";
        assert_eq!(r.render_text(), expected);
    }

    #[test]
    fn empty_histogram_renders_nan_quantiles() {
        let r = Registry::new();
        r.histogram("h", "empty");
        let text = r.render_text();
        assert!(text.contains("h{quantile=\"0.5\"} NaN"), "{text}");
        assert!(text.contains("h_count 0"), "{text}");
    }

    #[test]
    fn counter_family_renders_one_line_per_child() {
        let r = Registry::new();
        let shed = r.counter_family("engine_shed_total", "sheds by workload", "workload");
        shed.with("bfs").add(3);
        shed.with("spmv").inc();
        shed.with("bfs").inc(); // same child again
        assert_eq!(shed.total(), 5);
        let text = r.render_text();
        assert!(text.contains("# TYPE engine_shed_total counter"), "{text}");
        assert!(
            text.contains("engine_shed_total{workload=\"bfs\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("engine_shed_total{workload=\"spmv\"} 1"),
            "{text}"
        );
        let j = r.to_json();
        let fam = j.get("engine_shed_total").expect("family object");
        assert_eq!(fam.get("bfs").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn histogram_family_merged_equals_children() {
        let r = Registry::new();
        let lat = r.histogram_family("lat", "latency by workload", "workload");
        for i in 1..=50 {
            lat.with("a").record(i as f64);
        }
        for i in 51..=100 {
            lat.with("b").record(i as f64);
        }
        let merged = lat.merged();
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.min(), Some(1.0));
        assert_eq!(merged.max(), Some(100.0));
        let text = r.render_text();
        assert!(
            text.contains("lat{workload=\"a\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("lat_count{workload=\"b\"} 50"), "{text}");
    }

    #[test]
    fn gauge_family_renders_one_line_per_child() {
        let r = Registry::new();
        let depth = r.gauge_family("serve_shard_queue_depth", "queue depth by shard", "shard");
        depth.with("0").set(3.0);
        depth.with("1").set(1.5);
        depth.with("0").set(4.0); // same child: last set wins
        assert_eq!(depth.total(), 5.5);
        assert_eq!(depth.label(), "shard");
        let text = r.render_text();
        assert!(
            text.contains("# TYPE serve_shard_queue_depth gauge"),
            "{text}"
        );
        assert!(
            text.contains("serve_shard_queue_depth{shard=\"0\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("serve_shard_queue_depth{shard=\"1\"} 1.5"),
            "{text}"
        );
        let j = r.to_json();
        let fam = j.get("serve_shard_queue_depth").expect("family object");
        assert_eq!(fam.get("1").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "non-gauge-family")]
    fn gauge_family_kind_conflicts_panic() {
        let r = Registry::new();
        r.gauge("x", "a gauge");
        r.gauge_family("x", "not a family", "k");
    }

    #[test]
    fn label_values_are_escaped_in_text() {
        let r = Registry::new();
        r.counter_family("c", "family", "k").with("a\"b\\c").inc();
        let text = r.render_text();
        assert!(text.contains("c{k=\"a\\\"b\\\\c\"} 1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "non-counter-family")]
    fn family_kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x", "a counter");
        r.counter_family("x", "not a family", "k");
    }

    #[test]
    fn exemplars_render_in_text_and_json() {
        // A golden-format check for the exemplar lines: they follow the
        // summary block and carry bucket + trace_id labels. Histograms
        // without exemplars render exactly as before (the main golden
        // test above covers that).
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency");
        h.record(2.0);
        h.record_with_exemplar(2.0, 0xabcd);
        let text = r.render_text();
        let expected_line = format!(
            "lat_seconds_exemplar{{bucket=\"{}\",trace_id=\"{:032x}\"}} 2",
            h.exemplars()[0].0,
            0xabcd_u128
        );
        assert!(text.contains(&expected_line), "{text}");
        let j = r.to_json();
        let ex = j
            .get("lat_seconds")
            .and_then(|h| h.get("exemplars"))
            .and_then(Json::as_arr)
            .expect("exemplars array");
        assert_eq!(
            ex[0].get("trace_id").and_then(Json::as_str),
            Some(format!("{:032x}", 0xabcd_u128).as_str())
        );
        // Family children carry exemplars too, with the family label first.
        let fam = r.histogram_family("lat_by_workload", "latency by workload", "workload");
        fam.with("spmv").record_with_exemplar(0.5, 0x77);
        let text = r.render_text();
        assert!(
            text.contains("lat_by_workload_exemplar{workload=\"spmv\",bucket="),
            "{text}"
        );
    }

    #[test]
    fn value_reads_any_metric_kind() {
        let r = Registry::new();
        r.counter("c", "counter").add(3);
        r.gauge("g", "gauge").set(1.5);
        let h = r.histogram("h", "hist");
        for i in 1..=100 {
            h.record(i as f64);
        }
        r.counter_family("cf", "family", "k").with("a").add(2);
        r.gauge_family("gf", "family", "k").with("a").set(4.0);
        r.histogram_family("hf", "family", "k")
            .with("a")
            .record(7.0);
        assert_eq!(r.value("c", None), Some(3.0));
        assert_eq!(r.value("g", None), Some(1.5));
        assert_eq!(r.value("h", Some(0.0)), Some(1.0));
        assert!(
            r.value("h", None).unwrap() > 90.0,
            "default quantile is p99"
        );
        assert_eq!(r.value("cf", None), Some(2.0));
        assert_eq!(r.value("gf", None), Some(4.0));
        assert_eq!(r.value("hf", Some(1.0)), Some(7.0));
        assert_eq!(r.value("missing", None), None);
        assert_eq!(r.value("h2", None), None);
    }

    #[test]
    fn tail_exemplars_prefer_high_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat", "latency");
        h.record_with_exemplar(0.001, 0x1);
        h.record_with_exemplar(0.100, 0x2);
        h.record_with_exemplar(10.0, 0x3);
        let tail = r.tail_exemplars("lat", 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].trace_id, 0x3, "highest bucket first");
        assert_eq!(tail[1].trace_id, 0x2);
        assert!(r.tail_exemplars("missing", 4).is_empty());
        assert!(r.find_histogram("lat").is_some());
        assert!(r.find_histogram("missing").is_none());
        // Families pool exemplars across children.
        let fam = r.histogram_family("lat_w", "by workload", "workload");
        fam.with("a").record_with_exemplar(5.0, 0x10);
        fam.with("b").record_with_exemplar(0.5, 0x11);
        let tail = r.tail_exemplars("lat_w", 4);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].trace_id, 0x10);
    }

    #[test]
    fn json_export_shape() {
        let r = Registry::new();
        r.counter("c", "counter").add(3);
        r.gauge("g", "gauge").set(1.5);
        let h = r.histogram("h", "hist");
        for i in 1..=100 {
            h.record(i as f64);
        }
        let j = r.to_json();
        assert_eq!(j.get("c").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("g").and_then(Json::as_f64), Some(1.5));
        let hj = j.get("h").expect("histogram object");
        assert_eq!(hj.get("count").and_then(Json::as_u64), Some(100));
        assert!(hj.get("p99").and_then(Json::as_f64).is_some());
        // The export is valid JSON end to end.
        Json::parse(&j.render()).expect("round-trips");
    }
}
