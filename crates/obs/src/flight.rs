//! Flight recorder: a bounded per-thread ring of recent trace events,
//! plus the post-mortem bundle built from it when a request fails.
//!
//! The recorder is a [`Sink`] that is `Send + Sync`, so one instance can
//! be installed on every engine worker (thread-locally, through the pool)
//! while a user's own shared sink keeps receiving the same events. Each
//! thread gets its own ring of the most recent `capacity` events —
//! recording is a mutex push, reading happens only when something goes
//! wrong, so the rings cost nothing until a failure needs explaining.

use multidim_trace::json::Json;
use multidim_trace::{chrome, Event, Sink};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::thread::ThreadId;

/// A bounded ring of recent trace events per thread.
pub struct FlightRecorder {
    capacity: usize,
    rings: Mutex<HashMap<ThreadId, VecDeque<Event>>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events per thread (at
    /// least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            rings: Mutex::new(HashMap::new()),
        }
    }

    /// Events per thread this recorder retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The calling thread's recent events, oldest first. This is the
    /// post-mortem view: a failing worker calls it from its own thread to
    /// capture what it was doing just before the failure.
    pub fn recent(&self) -> Vec<Event> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings
            .get(&std::thread::current().id())
            .map(|ring| ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Total events currently buffered across all threads.
    pub fn buffered(&self) -> usize {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings.values().map(VecDeque::len).sum()
    }
}

impl Sink for FlightRecorder {
    fn event(&self, event: &Event) {
        let mut rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        let ring = rings.entry(std::thread::current().id()).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event.clone());
    }
}

/// Everything the engine knows about one failed request: what it was,
/// why it failed, how far it got, and what the worker traced on the way.
/// Built on the failing worker thread, stored in a bounded queue on the
/// engine, serialized with [`PostMortem::to_json`].
#[derive(Debug, Clone)]
pub struct PostMortem {
    /// Program name from the request.
    pub program: String,
    /// Content address of the request, when it was computed before the
    /// failure (a panic inside fingerprinting itself leaves `None`).
    pub fingerprint: Option<String>,
    /// Human-readable failure reason (the error's display form).
    pub reason: String,
    /// Time the request spent queued.
    pub queue_seconds: f64,
    /// Time in the compile/cache-resolution phase, when it started
    /// (partial on a mid-compile panic).
    pub compile_seconds: Option<f64>,
    /// Time in the run phase, when it started.
    pub run_seconds: Option<f64>,
    /// Static-analysis diagnostics attached to the executable, when one
    /// exists (one rendered line each).
    pub diagnostics: Vec<String>,
    /// The worker's most recent trace events, oldest first.
    pub events: Vec<Event>,
}

impl PostMortem {
    /// Serialize the bundle (events in Chrome trace-event form).
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        Json::Obj(vec![
            ("program".to_string(), Json::Str(self.program.clone())),
            (
                "fingerprint".to_string(),
                self.fingerprint
                    .clone()
                    .map(Json::Str)
                    .unwrap_or(Json::Null),
            ),
            ("reason".to_string(), Json::Str(self.reason.clone())),
            ("queue_seconds".to_string(), Json::Num(self.queue_seconds)),
            ("compile_seconds".to_string(), opt_num(self.compile_seconds)),
            ("run_seconds".to_string(), opt_num(self.run_seconds)),
            (
                "diagnostics".to_string(),
                Json::Arr(
                    self.diagnostics
                        .iter()
                        .map(|d| Json::Str(d.clone()))
                        .collect(),
                ),
            ),
            (
                "events".to_string(),
                Json::Arr(self.events.iter().map(chrome::event_json).collect()),
            ),
        ])
    }

    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_per_thread() {
        let rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.event(&Event::instant("t", format!("e{i}")));
        }
        let recent = rec.recent();
        let names: Vec<&str> = recent.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e7", "e8", "e9"], "only the newest 3 survive");

        // Another thread's events do not leak into this thread's view.
        let rec = std::sync::Arc::new(FlightRecorder::new(8));
        let rec2 = rec.clone();
        std::thread::spawn(move || rec2.event(&Event::instant("t", "other")))
            .join()
            .unwrap();
        assert!(rec.recent().is_empty());
        assert_eq!(rec.buffered(), 1);
    }

    #[test]
    fn post_mortem_serializes() {
        let pm = PostMortem {
            program: "p".to_string(),
            fingerprint: Some("ab".repeat(16)),
            reason: "worker panicked: boom".to_string(),
            queue_seconds: 0.001,
            compile_seconds: Some(0.2),
            run_seconds: None,
            diagnostics: vec!["MD001 error: race".to_string()],
            events: vec![Event::instant("search", "candidate").arg("score", 1.5)],
        };
        let j = pm.to_json();
        assert_eq!(j.get("program").and_then(Json::as_str), Some("p"));
        assert_eq!(j.get("run_seconds"), Some(&Json::Null));
        assert_eq!(
            j.get("events").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
        Json::parse(&pm.render()).expect("valid JSON");
    }
}
