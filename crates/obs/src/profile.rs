//! Per-request profile report: one JSON document stitching together the
//! engine's latency phases, the mapping search's score breakdown, and the
//! simulator's roofline counters for a single served request.
//!
//! The engine builds these from a `Response` (see `Engine::profile` in
//! `multidim-engine`); this crate only defines the shape, so it stays
//! dependency-free — the simulator metrics arrive as an already
//! serialized [`Json`] value rather than as a `RunMetrics` type.

use multidim_trace::json::Json;

/// Latency phases of one request, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseBreakdown {
    /// Queued, waiting for a worker.
    pub queue_seconds: f64,
    /// Resolving the executable: a cache lookup on a hit, the full
    /// pipeline (fuse → search → lower → check) on a miss.
    pub compile_seconds: f64,
    /// Executing on the simulator (wall clock, not simulated time).
    pub run_seconds: f64,
    /// End-to-end: queue wait plus worker service time.
    pub total_seconds: f64,
}

/// What the mapping search did for this request's program.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchBreakdown {
    /// The selected mapping, rendered.
    pub mapping: String,
    /// Raw score of the selected mapping.
    pub score: f64,
    /// Score normalized to the paper's plotting range.
    pub normalized_score: f64,
    /// Degree of parallelism after `ControlDOP`.
    pub dop: u64,
    /// Candidates that passed the hard constraints.
    pub candidates: u64,
    /// Candidates rejected by a hard constraint.
    pub pruned: u64,
}

/// The complete per-request profile.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProfile {
    /// Program name.
    pub program: String,
    /// Content address of the compiled artifact.
    pub fingerprint: String,
    /// Served from the compilation cache?
    pub cache_hit: bool,
    /// Served with a mapping from the tuning store?
    pub tuned: bool,
    /// Latency phases.
    pub phases: PhaseBreakdown,
    /// Mapping-search breakdown; `None` when the executable carries no
    /// analysis (fixed-mapping strategies, tuned mappings).
    pub search: Option<SearchBreakdown>,
    /// Simulator roofline counters: the `RunMetrics` JSON document
    /// (per-kernel cost counters, time breakdown, efficiency).
    pub metrics: Json,
}

impl RequestProfile {
    /// Serialize the profile.
    pub fn to_json(&self) -> Json {
        let phases = Json::Obj(vec![
            (
                "queue_seconds".to_string(),
                Json::Num(self.phases.queue_seconds),
            ),
            (
                "compile_seconds".to_string(),
                Json::Num(self.phases.compile_seconds),
            ),
            (
                "run_seconds".to_string(),
                Json::Num(self.phases.run_seconds),
            ),
            (
                "total_seconds".to_string(),
                Json::Num(self.phases.total_seconds),
            ),
        ]);
        let search = match &self.search {
            None => Json::Null,
            Some(s) => Json::Obj(vec![
                ("mapping".to_string(), Json::Str(s.mapping.clone())),
                ("score".to_string(), Json::Num(s.score)),
                (
                    "normalized_score".to_string(),
                    Json::Num(s.normalized_score),
                ),
                ("dop".to_string(), Json::Num(s.dop as f64)),
                ("candidates".to_string(), Json::Num(s.candidates as f64)),
                ("pruned".to_string(), Json::Num(s.pruned as f64)),
            ]),
        };
        Json::Obj(vec![
            ("program".to_string(), Json::Str(self.program.clone())),
            (
                "fingerprint".to_string(),
                Json::Str(self.fingerprint.clone()),
            ),
            ("cache_hit".to_string(), Json::Bool(self.cache_hit)),
            ("tuned".to_string(), Json::Bool(self.tuned)),
            ("phases".to_string(), phases),
            ("search".to_string(), search),
            ("metrics".to_string(), self.metrics.clone()),
        ])
    }

    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_serializes_all_sections() {
        let p = RequestProfile {
            program: "saxpy".to_string(),
            fingerprint: "0".repeat(32),
            cache_hit: true,
            tuned: false,
            phases: PhaseBreakdown {
                queue_seconds: 1e-4,
                compile_seconds: 2e-5,
                run_seconds: 3e-4,
                total_seconds: 4.2e-4,
            },
            search: Some(SearchBreakdown {
                mapping: "x(256)".to_string(),
                score: 12.0,
                normalized_score: 1.2,
                dop: 4096,
                candidates: 22,
                pruned: 44,
            }),
            metrics: Json::Obj(vec![("total_seconds".to_string(), Json::Num(3.5e-6))]),
        };
        let j = p.to_json();
        assert_eq!(j.get("cache_hit"), Some(&Json::Bool(true)));
        let phases = j.get("phases").expect("phases object");
        assert_eq!(
            phases.get("total_seconds").and_then(Json::as_f64),
            Some(4.2e-4)
        );
        let search = j.get("search").expect("search object");
        assert_eq!(search.get("pruned").and_then(Json::as_u64), Some(44));
        assert!(j.get("metrics").is_some());
        Json::parse(&p.render()).expect("valid JSON");
    }
}
