//! SLO burn-rate and metric-threshold alerting.
//!
//! The engine evaluates a fixed rule set on a caller-driven cadence (once
//! per load-generator window rotation, once per CI gate run) and emits
//! structured [`AlertEvent`]s on state *transitions*: a rule that starts
//! breaching emits one `firing` event, a rule that stops emits one
//! `resolved` event, and a rule that keeps breaching stays silent — the
//! log records edges, not levels.
//!
//! Two rule shapes:
//!
//! * [`BurnRateRule`] — the multi-window burn-rate alert from the SRE
//!   playbook: fire only when **both** a fast span and a slow span of an
//!   [`SloTracker`] burn the error budget faster
//!   than `threshold`. The fast window catches the onset quickly; the
//!   slow window keeps a brief blip from paging anyone.
//! * [`ThresholdRule`] — a plain comparison against any metric in the
//!   [`Registry`] (counter, gauge, family total, or histogram quantile),
//!   with `for_cycles` consecutive-breach hysteresis. When the watched
//!   metric is a latency histogram carrying exemplars, the firing event
//!   links the trace ids of the slowest recorded requests so the alert
//!   lands with evidence attached.
//!
//! Severities follow the two-tier convention: [`AlertSeverity::Page`]
//! means a human should look now (and fails the `check_alerts` CI gate);
//! [`AlertSeverity::Ticket`] means the budget is burning but the
//! situation is expected or survivable (an overdrive load test burning
//! budget on purpose files tickets, not pages).

use crate::registry::Registry;
use crate::slo::SloTracker;
use multidim_trace::json::Json;

/// How urgent a firing alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertSeverity {
    /// Wake a human; fails the CI alert gate.
    Page,
    /// File a ticket; informational under intentional overload.
    Ticket,
}

impl AlertSeverity {
    /// Stable lowercase name used in logs and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertSeverity::Page => "page",
            AlertSeverity::Ticket => "ticket",
        }
    }
}

/// Which half of an SLO a burn-rate rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurnObjective {
    /// The availability error budget (sheds, deadline misses, failures).
    Availability,
    /// The latency error budget (successes over the threshold).
    Latency,
}

impl BurnObjective {
    /// Stable lowercase name used in logs and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            BurnObjective::Availability => "availability",
            BurnObjective::Latency => "latency",
        }
    }
}

/// Which direction of excursion breaches a [`ThresholdRule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Breach when the observed value exceeds the threshold.
    Above,
    /// Breach when the observed value falls below the threshold.
    Below,
}

/// Multi-window SLO burn-rate rule: fire when both the fast and the slow
/// trailing spans burn budget faster than `threshold`.
#[derive(Debug, Clone)]
pub struct BurnRateRule {
    /// Rule name (unique within an engine).
    pub name: String,
    /// Page or ticket.
    pub severity: AlertSeverity,
    /// Name of the SLO tracker this rule reads (matched against the
    /// tracker names passed to [`AlertEngine::evaluate`]).
    pub slo: String,
    /// Which error budget to watch.
    pub objective: BurnObjective,
    /// Span of the fast window, in rotations.
    pub fast_windows: usize,
    /// Span of the slow window, in rotations.
    pub slow_windows: usize,
    /// Both spans must burn faster than this multiple of the budget rate.
    pub threshold: f64,
}

/// Plain comparison rule over any registry metric.
#[derive(Debug, Clone)]
pub struct ThresholdRule {
    /// Rule name (unique within an engine).
    pub name: String,
    /// Page or ticket.
    pub severity: AlertSeverity,
    /// Registry metric name to read (counter, gauge, family, histogram).
    pub metric: String,
    /// For histograms, the quantile to compare (default p99).
    pub quantile: Option<f64>,
    /// Direction of breach.
    pub comparison: Comparison,
    /// The threshold value.
    pub threshold: f64,
    /// Consecutive breaching evaluations required before firing (0 and 1
    /// both mean "fire immediately").
    pub for_cycles: u64,
    /// Optional histogram name whose tail exemplars are attached to the
    /// firing event (defaults to `metric` when it is a histogram).
    pub exemplar_metric: Option<String>,
}

/// One alert rule of either shape.
#[derive(Debug, Clone)]
pub enum AlertRule {
    /// Multi-window SLO burn-rate rule.
    Burn(BurnRateRule),
    /// Registry metric threshold rule.
    Threshold(ThresholdRule),
}

impl AlertRule {
    /// The rule's name.
    pub fn name(&self) -> &str {
        match self {
            AlertRule::Burn(r) => &r.name,
            AlertRule::Threshold(r) => &r.name,
        }
    }

    /// The rule's severity.
    pub fn severity(&self) -> AlertSeverity {
        match self {
            AlertRule::Burn(r) => r.severity,
            AlertRule::Threshold(r) => r.severity,
        }
    }
}

/// A state transition of one rule: `firing == true` is the onset edge,
/// `firing == false` the resolution edge.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// Name of the rule that transitioned.
    pub rule: String,
    /// Severity of the rule.
    pub severity: AlertSeverity,
    /// `true` for the onset edge, `false` for resolution.
    pub firing: bool,
    /// Evaluation cycle (0-based) at which the transition happened.
    pub cycle: u64,
    /// The observed value at transition time (fast-window burn rate for
    /// burn rules, the metric reading for threshold rules).
    pub value: f64,
    /// The rule's threshold, for self-contained log lines.
    pub threshold: f64,
    /// Trace ids (hex) of exemplar requests backing the alert, when the
    /// rule watches a histogram that records exemplars.
    pub exemplars: Vec<String>,
}

impl AlertEvent {
    /// Serialize the event.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule".to_string(), Json::Str(self.rule.clone())),
            (
                "severity".to_string(),
                Json::Str(self.severity.as_str().to_string()),
            ),
            (
                "state".to_string(),
                Json::Str(if self.firing { "firing" } else { "resolved" }.to_string()),
            ),
            ("cycle".to_string(), Json::Num(self.cycle as f64)),
            ("value".to_string(), Json::Num(self.value)),
            ("threshold".to_string(), Json::Num(self.threshold)),
            (
                "exemplars".to_string(),
                Json::Arr(
                    self.exemplars
                        .iter()
                        .map(|t| Json::Str(t.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// One-line human rendering for logs and dashboards.
    pub fn render_line(&self) -> String {
        let state = if self.firing { "FIRING" } else { "resolved" };
        let mut line = format!(
            "[{}] {} {}: value {:.4} vs threshold {:.4} (cycle {})",
            self.severity.as_str(),
            state,
            self.rule,
            self.value,
            self.threshold,
            self.cycle
        );
        if !self.exemplars.is_empty() {
            line.push_str(&format!(" exemplars={}", self.exemplars.join(",")));
        }
        line
    }
}

/// Per-rule evaluation state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    firing: bool,
    consecutive_breaches: u64,
}

/// Evaluates a rule set against SLO trackers and a metrics registry,
/// tracking firing state and accumulating a transition log.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    log: Vec<AlertEvent>,
    cycle: u64,
}

impl AlertEngine {
    /// An engine over a fixed rule set; all rules start resolved.
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        let states = vec![RuleState::default(); rules.len()];
        AlertEngine {
            rules,
            states,
            log: Vec::new(),
            cycle: 0,
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluate every rule once. Burn rules look up their tracker by name
    /// in `trackers`; threshold rules read `registry`. Returns the events
    /// emitted this cycle (transitions only) and appends them to the log.
    pub fn evaluate(
        &mut self,
        registry: Option<&Registry>,
        trackers: &[(&str, &SloTracker)],
    ) -> Vec<AlertEvent> {
        let cycle = self.cycle;
        self.cycle += 1;
        let mut events = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let (breaching, value, threshold, exemplars) = match rule {
                AlertRule::Burn(r) => {
                    let Some((_, tracker)) = trackers.iter().find(|(n, _)| *n == r.slo) else {
                        continue; // tracker not wired this cycle: skip, keep state
                    };
                    let pick = |b: &crate::slo::BurnRate| match r.objective {
                        BurnObjective::Availability => b.availability,
                        BurnObjective::Latency => b.latency,
                    };
                    let fast = pick(&tracker.burn_rate(r.fast_windows));
                    let slow = pick(&tracker.burn_rate(r.slow_windows));
                    let breaching = match (fast, slow) {
                        (Some(f), Some(s)) => f > r.threshold && s > r.threshold,
                        _ => false, // no eligible samples: nothing to alert on
                    };
                    (breaching, fast.unwrap_or(0.0), r.threshold, Vec::new())
                }
                AlertRule::Threshold(r) => {
                    let Some(value) = registry.and_then(|reg| reg.value(&r.metric, r.quantile))
                    else {
                        continue; // metric absent: skip, keep state
                    };
                    let breaching = match r.comparison {
                        Comparison::Above => value > r.threshold,
                        Comparison::Below => value < r.threshold,
                    };
                    let exemplars = if breaching {
                        let source = r.exemplar_metric.as_deref().unwrap_or(&r.metric);
                        registry
                            .map(|reg| {
                                reg.tail_exemplars(source, 3)
                                    .iter()
                                    .map(|e| e.trace_hex())
                                    .collect()
                            })
                            .unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    (breaching, value, r.threshold, exemplars)
                }
            };

            let required = match rule {
                AlertRule::Burn(_) => 1, // multi-window spans are the hysteresis
                AlertRule::Threshold(r) => r.for_cycles.max(1),
            };
            if breaching {
                state.consecutive_breaches += 1;
            } else {
                state.consecutive_breaches = 0;
            }
            let should_fire = state.consecutive_breaches >= required;
            if should_fire != state.firing {
                state.firing = should_fire;
                events.push(AlertEvent {
                    rule: rule.name().to_string(),
                    severity: rule.severity(),
                    firing: should_fire,
                    cycle,
                    value,
                    threshold,
                    exemplars,
                });
            }
        }
        self.log.extend(events.iter().cloned());
        events
    }

    /// Names and severities of the rules currently firing.
    pub fn firing(&self) -> Vec<(String, AlertSeverity)> {
        self.rules
            .iter()
            .zip(self.states.iter())
            .filter(|(_, s)| s.firing)
            .map(|(r, _)| (r.name().to_string(), r.severity()))
            .collect()
    }

    /// The full transition log since construction.
    pub fn log(&self) -> &[AlertEvent] {
        &self.log
    }

    /// The transition log as a JSON array.
    pub fn log_json(&self) -> Json {
        Json::Arr(self.log.iter().map(|e| e.to_json()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::Slo;

    fn burn_rule(threshold: f64) -> AlertRule {
        AlertRule::Burn(BurnRateRule {
            name: "availability-burn".to_string(),
            severity: AlertSeverity::Page,
            slo: "test".to_string(),
            objective: BurnObjective::Availability,
            fast_windows: 1,
            slow_windows: 4,
            threshold,
        })
    }

    #[test]
    fn burn_rule_requires_both_windows() {
        let tracker = SloTracker::new(Slo::new("test", 0.99, 0.010), 4);
        let mut engine = AlertEngine::new(vec![burn_rule(2.0)]);

        // Three clean windows, then one on fire.
        for _ in 0..3 {
            for _ in 0..100 {
                tracker.record(0.001, true);
            }
            tracker.rotate();
        }
        for i in 0..100 {
            tracker.record(0.001, i % 10 != 0); // 10% errors → fast burn 10x
        }
        // Fast: 10/100 over 0.01 → 10x. Slow: 10/400 over 0.01 → 2.5x.
        // Both exceed 2.0 → the alert fires.
        let events = engine.evaluate(None, &[("test", &tracker)]);
        assert_eq!(events.len(), 1, "both spans breach → fires");
        assert!(events[0].firing);
        assert_eq!(events[0].severity, AlertSeverity::Page);

        // Recovery: rotate the bad window toward the back of the horizon
        // and fill with clean traffic until the fast span is clean.
        tracker.rotate();
        for _ in 0..400 {
            tracker.record(0.001, true);
        }
        let events = engine.evaluate(None, &[("test", &tracker)]);
        assert_eq!(events.len(), 1, "fast span clean → resolves");
        assert!(!events[0].firing);
        assert!(engine.firing().is_empty());
        assert_eq!(engine.log().len(), 2);
    }

    #[test]
    fn burn_rule_stays_quiet_when_only_fast_breaches() {
        let tracker = SloTracker::new(Slo::new("test", 0.99, 0.010), 8);
        // Seven very clean windows dilute the slow span.
        for _ in 0..7 {
            for _ in 0..1000 {
                tracker.record(0.001, true);
            }
            tracker.rotate();
        }
        for i in 0..100 {
            tracker.record(0.001, i % 10 != 0); // fast burn 10x
        }
        let mut engine = AlertEngine::new(vec![AlertRule::Burn(BurnRateRule {
            name: "availability-burn".to_string(),
            severity: AlertSeverity::Page,
            slo: "test".to_string(),
            objective: BurnObjective::Availability,
            fast_windows: 1,
            slow_windows: 8,
            threshold: 2.0,
        })]);
        // Slow: 10 / 7100 ≈ 0.14% over 1% budget → 0.14x, below 2.0.
        let events = engine.evaluate(None, &[("test", &tracker)]);
        assert!(events.is_empty(), "slow span clean → no page: {events:?}");
        assert!(engine.firing().is_empty());
    }

    #[test]
    fn threshold_rule_honours_for_cycles_and_resolves() {
        let registry = Registry::new();
        let gauge = registry.gauge("queue_depth", "queue depth");
        let mut engine = AlertEngine::new(vec![AlertRule::Threshold(ThresholdRule {
            name: "deep-queue".to_string(),
            severity: AlertSeverity::Ticket,
            metric: "queue_depth".to_string(),
            quantile: None,
            comparison: Comparison::Above,
            threshold: 10.0,
            for_cycles: 3,
            exemplar_metric: None,
        })]);

        gauge.set(50.0);
        assert!(engine.evaluate(Some(&registry), &[]).is_empty(), "1/3");
        assert!(engine.evaluate(Some(&registry), &[]).is_empty(), "2/3");
        let events = engine.evaluate(Some(&registry), &[]);
        assert_eq!(events.len(), 1, "3/3 → fires");
        assert!(events[0].firing);
        assert_eq!(events[0].value, 50.0);
        assert_eq!(engine.firing().len(), 1);

        // One clean reading resets the streak and resolves.
        gauge.set(2.0);
        let events = engine.evaluate(Some(&registry), &[]);
        assert_eq!(events.len(), 1);
        assert!(!events[0].firing);
        // A fresh breach must re-earn all three cycles.
        gauge.set(50.0);
        assert!(engine.evaluate(Some(&registry), &[]).is_empty());
    }

    #[test]
    fn threshold_rule_attaches_histogram_exemplars() {
        let registry = Registry::new();
        let hist = registry.histogram("latency_seconds", "latency");
        for i in 1..=50 {
            hist.record(i as f64 * 1e-3);
        }
        hist.record_with_exemplar(0.200, 0xabcdu128);
        let mut engine = AlertEngine::new(vec![AlertRule::Threshold(ThresholdRule {
            name: "slow-p99".to_string(),
            severity: AlertSeverity::Page,
            metric: "latency_seconds".to_string(),
            quantile: Some(0.99),
            comparison: Comparison::Above,
            threshold: 0.050,
            for_cycles: 1,
            exemplar_metric: None,
        })]);
        let events = engine.evaluate(Some(&registry), &[]);
        assert_eq!(events.len(), 1);
        assert!(events[0].firing);
        assert_eq!(
            events[0].exemplars,
            vec![multidim_trace::trace_id_hex(0xabcd)],
            "the slowest exemplar backs the alert"
        );
    }

    #[test]
    fn missing_metric_or_tracker_keeps_state() {
        let registry = Registry::new();
        let mut engine = AlertEngine::new(vec![
            AlertRule::Threshold(ThresholdRule {
                name: "ghost".to_string(),
                severity: AlertSeverity::Page,
                metric: "does_not_exist".to_string(),
                quantile: None,
                comparison: Comparison::Above,
                threshold: 1.0,
                for_cycles: 1,
                exemplar_metric: None,
            }),
            burn_rule(1.0),
        ]);
        let events = engine.evaluate(Some(&registry), &[]);
        assert!(events.is_empty(), "absent inputs never transition");
        assert!(engine.firing().is_empty());
    }

    #[test]
    fn log_json_round_trips() {
        let registry = Registry::new();
        registry.gauge("g", "gauge").set(5.0);
        let mut engine = AlertEngine::new(vec![AlertRule::Threshold(ThresholdRule {
            name: "g-high".to_string(),
            severity: AlertSeverity::Ticket,
            metric: "g".to_string(),
            quantile: None,
            comparison: Comparison::Above,
            threshold: 1.0,
            for_cycles: 1,
            exemplar_metric: None,
        })]);
        engine.evaluate(Some(&registry), &[]);
        let rendered = engine.log_json().render();
        let parsed = Json::parse(&rendered).expect("valid JSON");
        let arr = parsed.as_arr().expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("state").and_then(|s| s.as_str()), Some("firing"));
        assert_eq!(
            arr[0].get("severity").and_then(|s| s.as_str()),
            Some("ticket")
        );
        let line = engine.log()[0].render_line();
        assert!(line.contains("FIRING") && line.contains("g-high"), "{line}");
    }
}
