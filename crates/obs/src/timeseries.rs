//! Bounded time series for overload telemetry.
//!
//! A [`TimeSeries`] is a named, capacity-bounded ring of `(t, value)`
//! samples — queue depth, in-flight count, shed rate, deadline-miss rate
//! — pushed by whoever drives the sampling cadence (the load generator's
//! sampler thread, a test's loop). Reading renders either JSON
//! ([`TimeSeries::to_json`]) or a one-line unicode sparkline
//! ([`TimeSeries::sparkline`]) for text dashboards.
//!
//! Like the histograms, the type is deliberately passive: no internal
//! clock, no background thread — a caller-driven `push` keeps tests
//! deterministic and the cost model obvious.

use multidim_trace::json::Json;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Summary statistics of a series' retained samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStats {
    /// Smallest retained value.
    pub min: f64,
    /// Largest retained value.
    pub max: f64,
    /// Mean of retained values.
    pub mean: f64,
    /// Most recent value.
    pub last: f64,
    /// Retained sample count.
    pub len: usize,
}

/// A named bounded ring of timestamped samples.
pub struct TimeSeries {
    name: String,
    capacity: usize,
    inner: Mutex<VecDeque<(f64, f64)>>,
}

impl TimeSeries {
    /// A series named `name` retaining the last `capacity` samples (at
    /// least 1).
    pub fn new(name: &str, capacity: usize) -> TimeSeries {
        TimeSeries {
            name: name.to_string(),
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample at time `t` (seconds, caller's epoch), dropping
    /// the oldest beyond capacity. NaN values are ignored.
    pub fn push(&self, t: f64, value: f64) {
        if value.is_nan() {
            return;
        }
        let mut s = self.lock();
        if s.len() == self.capacity {
            s.pop_front();
        }
        s.push_back((t, value));
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> Vec<(f64, f64)> {
        self.lock().iter().copied().collect()
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Min/max/mean/last over the retained samples; `None` when empty.
    pub fn stats(&self) -> Option<SeriesStats> {
        let s = self.lock();
        let (&(_, first), &(_, last)) = (s.front()?, s.back()?);
        let mut min = first;
        let mut max = first;
        let mut sum = 0.0;
        for &(_, v) in s.iter() {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(SeriesStats {
            min,
            max,
            mean: sum / s.len() as f64,
            last,
            len: s.len(),
        })
    }

    /// A `width`-character sparkline of the retained samples (chunked by
    /// max when more samples than columns), scaled min..max. Empty series
    /// render as an empty string.
    pub fn sparkline(&self, width: usize) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let samples = self.samples();
        if samples.is_empty() || width == 0 {
            return String::new();
        }
        let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
        // Chunk to at most `width` columns, keeping each chunk's max (the
        // overload view: spikes must survive downsampling).
        let cols: Vec<f64> = if values.len() <= width {
            values
        } else {
            (0..width)
                .map(|c| {
                    let lo = c * values.len() / width;
                    let hi = ((c + 1) * values.len() / width).max(lo + 1);
                    values[lo..hi].iter().copied().fold(f64::MIN, f64::max)
                })
                .collect()
        };
        let (min, max) = cols
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let span = (max - min).max(f64::MIN_POSITIVE);
        cols.iter()
            .map(|&v| {
                let idx = (((v - min) / span) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            })
            .collect()
    }

    /// Serialize as `{name, t: [...], v: [...]}`.
    pub fn to_json(&self) -> Json {
        let samples = self.samples();
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "t".to_string(),
                Json::Arr(samples.iter().map(|&(t, _)| Json::Num(t)).collect()),
            ),
            (
                "v".to_string(),
                Json::Arr(samples.iter().map(|&(_, v)| Json::Num(v)).collect()),
            ),
        ])
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<(f64, f64)>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let s = TimeSeries::new("queue_depth", 3);
        for i in 0..5 {
            s.push(i as f64, (i * 10) as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.samples(), vec![(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]);
        let st = s.stats().unwrap();
        assert_eq!(st.min, 20.0);
        assert_eq!(st.max, 40.0);
        assert_eq!(st.mean, 30.0);
        assert_eq!(st.last, 40.0);
    }

    #[test]
    fn empty_series_is_quiet() {
        let s = TimeSeries::new("x", 8);
        assert!(s.is_empty());
        assert_eq!(s.stats(), None);
        assert_eq!(s.sparkline(10), "");
        Json::parse(&s.to_json().render()).expect("valid JSON");
    }

    #[test]
    fn sparkline_preserves_spikes_when_downsampling() {
        let s = TimeSeries::new("shed", 100);
        for i in 0..100 {
            // Flat at 1 with a single spike at i == 50.
            s.push(i as f64, if i == 50 { 100.0 } else { 1.0 });
        }
        let line = s.sparkline(10);
        assert_eq!(line.chars().count(), 10);
        assert!(line.contains('█'), "spike survives chunk-max: {line}");
        assert!(line.contains('▁'), "baseline renders low: {line}");
    }

    #[test]
    fn constant_series_renders_without_nan() {
        let s = TimeSeries::new("flat", 8);
        for i in 0..8 {
            s.push(i as f64, 5.0);
        }
        let line = s.sparkline(8);
        assert_eq!(line.chars().count(), 8);
        s.push(8.0, f64::NAN); // ignored
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn json_round_trips() {
        let s = TimeSeries::new("in_flight", 4);
        s.push(0.5, 2.0);
        s.push(1.0, 3.0);
        let j = s.to_json();
        assert_eq!(j.get("name").and_then(Json::as_str), Some("in_flight"));
        assert_eq!(
            j.get("t").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        Json::parse(&j.render()).expect("valid JSON");
    }
}
