//! # multidim-obs — fleet observability for the multidim service layer
//!
//! The paper's argument is quantitative — coalescing ratios, occupancy,
//! launch overhead — and the service layer (`multidim-engine`) serves
//! those measurements at volume. This crate is the layer that makes the
//! numbers first-class:
//!
//! * a thread-safe **metrics [`Registry`]** of named [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed mergeable [`Histogram`]s (p50/p90/p99/
//!   p999 estimation, [`SlidingWindow`] aggregation), with Prometheus-style
//!   text exposition ([`Registry::render_text`]) and JSON export
//!   ([`Registry::to_json`]);
//! * a **[`FlightRecorder`]** — a bounded ring of recent trace events per
//!   engine worker, dumped as a [`PostMortem`] bundle (events + request
//!   fingerprint + diagnostics + phase timings) when a request panics,
//!   misses its deadline, or fails to compile;
//! * a **[`RequestProfile`]** report stitching one request's latency
//!   phases (queue → compile → run), mapping-search score breakdown, and
//!   simulator roofline counters into a single JSON document;
//! * **labelled metric families** ([`CounterFamily`], [`GaugeFamily`],
//!   [`HistogramFamily`]) — one metric name fanned out per label value
//!   (per-workload outcome counters and latency histograms under load,
//!   per-shard queue-depth gauges in the sharded serving tier);
//! * an **[`slo`] module** — SLO definitions, error-budget accounting,
//!   and multi-window burn rates ([`SloTracker`]) over the same explicit
//!   rotation model as [`SlidingWindow`];
//! * **[`TimeSeries`]** — bounded overload telemetry rings (queue depth,
//!   in-flight, shed rate) with sparkline and JSON rendering;
//! * an **[`alerts`] module** — an [`AlertEngine`] evaluating multi-window
//!   SLO burn-rate rules and metric threshold rules, emitting structured
//!   firing/resolved [`AlertEvent`]s with exemplar trace ids attached;
//! * histogram **[`Exemplar`]s** — each latency bucket remembers the
//!   trace id of a recent request that landed there, so a p99 spike in
//!   the exposition links straight to a kept trace.
//!
//! Like the rest of the workspace, the crate has no external
//! dependencies; JSON goes through [`multidim_trace::json`] and trace
//! events through [`multidim_trace::Event`].
//!
//! # Example
//!
//! ```
//! use multidim_obs::Registry;
//!
//! let registry = Registry::new();
//! let latency = registry.histogram("request_seconds", "request latency");
//! let served = registry.counter("requests_total", "requests served");
//! for i in 1..=100 {
//!     latency.record(i as f64 * 1e-4);
//!     served.inc();
//! }
//! assert_eq!(served.get(), 100);
//! let p99 = latency.quantile(0.99).unwrap();
//! assert!(p99 > 90e-4 && p99 < 110e-4);
//! let text = registry.render_text();
//! assert!(text.contains("# TYPE request_seconds summary"));
//! assert!(text.contains("requests_total 100"));
//! ```

#![warn(missing_docs)]

pub mod alerts;
pub mod flight;
pub mod hist;
pub mod profile;
pub mod registry;
pub mod slo;
pub mod timeseries;

pub use alerts::{
    AlertEngine, AlertEvent, AlertRule, AlertSeverity, BurnObjective, BurnRateRule, Comparison,
    ThresholdRule,
};
pub use flight::{FlightRecorder, PostMortem};
pub use hist::{Exemplar, Histogram, HistogramSnapshot, SlidingWindow, BUCKETS, SUB_BUCKETS};
pub use profile::{PhaseBreakdown, RequestProfile, SearchBreakdown};
pub use registry::{
    Counter, CounterFamily, Gauge, GaugeFamily, HistogramFamily, Registry, QUANTILES,
};
pub use slo::{BurnRate, LatencyObjective, Slo, SloStatus, SloTracker};
pub use timeseries::{SeriesStats, TimeSeries};

// The registry and recorder are shared across engine workers; fail
// compilation loudly if they ever stop being Send + Sync.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Registry>();
    assert_send_sync::<Histogram>();
    assert_send_sync::<Counter>();
    assert_send_sync::<Gauge>();
    assert_send_sync::<SlidingWindow>();
    assert_send_sync::<FlightRecorder>();
    assert_send_sync::<CounterFamily>();
    assert_send_sync::<GaugeFamily>();
    assert_send_sync::<HistogramFamily>();
    assert_send_sync::<SloTracker>();
    assert_send_sync::<TimeSeries>();
    assert_send_sync::<AlertEngine>();
};
