//! SLO definitions, error-budget accounting, and multi-window burn rates.
//!
//! An [`Slo`] states two objectives over a service:
//!
//! * **availability** — at least `availability` of all requests succeed
//!   (a shed, deadline miss, or failure is an availability violation);
//! * **latency** — at least `latency.quantile` of *successful* requests
//!   complete within `latency.threshold` seconds (failed requests are
//!   charged to the availability budget, not double-counted here).
//!
//! An [`SloTracker`] accumulates outcomes into explicit windows (the same
//! caller-driven rotation model as
//! [`SlidingWindow`](crate::hist::SlidingWindow): call
//! [`SloTracker::rotate`] on whatever cadence you like — once per second,
//! once per round — and the tracker retains the last `windows` rotations).
//! Everything derived is a pure function of the retained counts, so every
//! number the dashboard shows can be recomputed by hand from the window
//! totals:
//!
//! * **error budget** — over the retained horizon, the budget is the
//!   `(1 - objective)` fraction of requests allowed to be bad;
//!   [`SloStatus`] reports the fraction of that budget consumed (may
//!   exceed 1 when the SLO is blown);
//! * **burn rate** — `bad_fraction / (1 - objective)` over a trailing
//!   span of windows: `1.0` means errors arrive exactly at the budgeted
//!   rate, `2.0` means the budget burns twice as fast as it accrues.
//!   [`SloTracker::burn_rate`] takes the span, so callers implement
//!   multi-window alerts (fast window high AND slow window high) by
//!   asking for two spans.

use crate::hist::HistogramSnapshot;
use multidim_trace::json::Json;
use std::collections::VecDeque;
use std::sync::Mutex;

/// The latency half of an SLO: `quantile` of successful requests must
/// finish within `threshold` seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyObjective {
    /// Target quantile in `(0, 1)`, e.g. `0.99`.
    pub quantile: f64,
    /// Latency threshold in seconds.
    pub threshold: f64,
}

/// A service-level objective: an availability target plus a latency
/// target.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// Objective name (labels dashboards and reports).
    pub name: String,
    /// Fraction of all requests that must succeed, e.g. `0.99`.
    pub availability: f64,
    /// Latency objective over successful requests.
    pub latency: LatencyObjective,
}

impl Slo {
    /// A conventional "three nines availability, p99 under `threshold`"
    /// objective.
    pub fn new(name: &str, availability: f64, p99_threshold_seconds: f64) -> Slo {
        Slo {
            name: name.to_string(),
            availability,
            latency: LatencyObjective {
                quantile: 0.99,
                threshold: p99_threshold_seconds,
            },
        }
    }
}

/// One rotation's worth of outcomes.
#[derive(Debug, Clone, Default)]
struct Window {
    /// All requests observed (success or not).
    total: u64,
    /// Requests that failed (shed, expired, errored).
    errors: u64,
    /// Successful requests slower than the latency threshold.
    slow: u64,
    /// Latencies of successful requests.
    latency: HistogramSnapshot,
}

impl Window {
    fn merge(&mut self, other: &Window) {
        self.total += other.total;
        self.errors += other.errors;
        self.slow += other.slow;
        self.latency.merge(&other.latency);
    }
}

/// Burn rates over a trailing span of windows. A rate of `1.0` consumes
/// the error budget exactly as fast as it accrues; `None` fields mean the
/// span held no eligible samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRate {
    /// Windows the span covered (capped at the retained count).
    pub windows: usize,
    /// Requests in the span.
    pub samples: u64,
    /// `error_fraction / (1 - availability objective)`.
    pub availability: Option<f64>,
    /// `slow_fraction / (1 - latency quantile)`, over successes.
    pub latency: Option<f64>,
}

/// Point-in-time SLO report over the full retained horizon. Produced by
/// [`SloTracker::status`]; renders as a text dashboard block
/// ([`SloStatus::render_text`]) or JSON ([`SloStatus::to_json`]).
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The objective being reported.
    pub slo: Slo,
    /// Retained windows contributing to the horizon.
    pub windows: usize,
    /// Requests in the horizon.
    pub samples: u64,
    /// Failed requests in the horizon.
    pub errors: u64,
    /// Successful-but-slow requests in the horizon.
    pub slow: u64,
    /// Observed availability (`None` when no samples).
    pub availability: Option<f64>,
    /// Observed fraction of successes within the latency threshold.
    pub latency_compliance: Option<f64>,
    /// Observed latency at the objective's quantile, in seconds.
    pub observed_quantile: Option<f64>,
    /// Fraction of the availability error budget consumed (may exceed 1).
    pub availability_budget_consumed: Option<f64>,
    /// Fraction of the latency error budget consumed (may exceed 1).
    pub latency_budget_consumed: Option<f64>,
    /// Burn rates over the fast (most recent window) and slow (full
    /// horizon) spans, in that order.
    pub burn: Vec<BurnRate>,
}

impl SloStatus {
    /// Serialize the status.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        let burn = self
            .burn
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("windows".to_string(), Json::Num(b.windows as f64)),
                    ("samples".to_string(), Json::Num(b.samples as f64)),
                    ("availability".to_string(), opt(b.availability)),
                    ("latency".to_string(), opt(b.latency)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("slo".to_string(), Json::Str(self.slo.name.clone())),
            (
                "availability_objective".to_string(),
                Json::Num(self.slo.availability),
            ),
            (
                "latency_quantile".to_string(),
                Json::Num(self.slo.latency.quantile),
            ),
            (
                "latency_threshold_seconds".to_string(),
                Json::Num(self.slo.latency.threshold),
            ),
            ("windows".to_string(), Json::Num(self.windows as f64)),
            ("samples".to_string(), Json::Num(self.samples as f64)),
            ("errors".to_string(), Json::Num(self.errors as f64)),
            ("slow".to_string(), Json::Num(self.slow as f64)),
            ("availability".to_string(), opt(self.availability)),
            (
                "latency_compliance".to_string(),
                opt(self.latency_compliance),
            ),
            (
                "observed_quantile_seconds".to_string(),
                opt(self.observed_quantile),
            ),
            (
                "availability_budget_consumed".to_string(),
                opt(self.availability_budget_consumed),
            ),
            (
                "latency_budget_consumed".to_string(),
                opt(self.latency_budget_consumed),
            ),
            ("burn_rates".to_string(), Json::Arr(burn)),
        ])
    }

    /// Multi-line text dashboard block.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let pct = |v: Option<f64>| match v {
            Some(v) => format!("{:.3}%", v * 100.0),
            None => "-".to_string(),
        };
        let num = |v: Option<f64>| match v {
            Some(v) => format!("{v:.2}"),
            None => "-".to_string(),
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SLO {}: availability >= {:.3}%, p{:.0} <= {:.1} ms",
            self.slo.name,
            self.slo.availability * 100.0,
            self.slo.latency.quantile * 100.0,
            self.slo.latency.threshold * 1e3,
        );
        let _ = writeln!(
            out,
            "  horizon        {} windows, {} requests ({} errors, {} slow)",
            self.windows, self.samples, self.errors, self.slow
        );
        let _ = writeln!(
            out,
            "  availability   {}  (budget consumed {})",
            pct(self.availability),
            pct(self.availability_budget_consumed),
        );
        let _ = writeln!(
            out,
            "  latency        {} within {:.1} ms, p{:.0} = {} ms  (budget consumed {})",
            pct(self.latency_compliance),
            self.slo.latency.threshold * 1e3,
            self.slo.latency.quantile * 100.0,
            match self.observed_quantile {
                Some(v) => format!("{:.2}", v * 1e3),
                None => "-".to_string(),
            },
            pct(self.latency_budget_consumed),
        );
        for b in &self.burn {
            let _ = writeln!(
                out,
                "  burn rate      {:>2}-window span: availability {}x, latency {}x ({} samples)",
                b.windows,
                num(b.availability),
                num(b.latency),
                b.samples
            );
        }
        out
    }
}

/// Thread-safe SLO accounting over explicit windows. Record outcomes with
/// [`SloTracker::record`], rotate on your own cadence, read with
/// [`SloTracker::status`] / [`SloTracker::burn_rate`].
pub struct SloTracker {
    slo: Slo,
    inner: Mutex<Tracker>,
}

struct Tracker {
    windows: VecDeque<Window>,
    capacity: usize,
}

impl SloTracker {
    /// A tracker retaining the last `windows` rotations (at least 1).
    pub fn new(slo: Slo, windows: usize) -> SloTracker {
        let mut q = VecDeque::new();
        q.push_back(Window::default());
        SloTracker {
            slo,
            inner: Mutex::new(Tracker {
                windows: q,
                capacity: windows.max(1),
            }),
        }
    }

    /// The objective this tracker accounts against.
    pub fn slo(&self) -> &Slo {
        &self.slo
    }

    /// Record one request outcome into the current window. `success`
    /// means the request was served; `latency_seconds` is only consulted
    /// (and only recorded) for successful requests.
    pub fn record(&self, latency_seconds: f64, success: bool) {
        let mut t = self.lock();
        let w = t.windows.back_mut().expect("at least one window");
        w.total += 1;
        if success {
            if latency_seconds > self.slo.latency.threshold {
                w.slow += 1;
            }
            w.latency.record(latency_seconds);
        } else {
            w.errors += 1;
        }
    }

    /// Start a fresh window, dropping the oldest beyond capacity.
    pub fn rotate(&self) {
        let mut t = self.lock();
        t.windows.push_back(Window::default());
        while t.windows.len() > t.capacity {
            t.windows.pop_front();
        }
    }

    /// Burn rates over the most recent `span` windows (capped at the
    /// retained count; `span` 0 is treated as 1).
    pub fn burn_rate(&self, span: usize) -> BurnRate {
        let t = self.lock();
        let span = span.clamp(1, t.windows.len());
        let mut merged = Window::default();
        for w in t.windows.iter().rev().take(span) {
            merged.merge(w);
        }
        burn_of(&merged, &self.slo, span)
    }

    /// Full status over every retained window, including fast
    /// (single-window) and slow (full-horizon) burn rates.
    pub fn status(&self) -> SloStatus {
        let t = self.lock();
        let windows = t.windows.len();
        let mut horizon = Window::default();
        for w in &t.windows {
            horizon.merge(w);
        }
        let mut last = Window::default();
        if let Some(w) = t.windows.back() {
            last.merge(w);
        }
        drop(t);

        let successes = horizon.total - horizon.errors;
        let availability = ratio(successes, horizon.total);
        let latency_compliance = ratio(successes - horizon.slow, successes);
        let burn = vec![
            burn_of(&last, &self.slo, 1),
            burn_of(&horizon, &self.slo, windows),
        ];
        SloStatus {
            slo: self.slo.clone(),
            windows,
            samples: horizon.total,
            errors: horizon.errors,
            slow: horizon.slow,
            availability,
            latency_compliance,
            observed_quantile: horizon.latency.quantile(self.slo.latency.quantile),
            availability_budget_consumed: budget_consumed(
                horizon.errors,
                horizon.total,
                self.slo.availability,
            ),
            latency_budget_consumed: budget_consumed(
                horizon.slow,
                successes,
                self.slo.latency.quantile,
            ),
            burn,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Tracker> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

/// `bad / (allowed_bad_fraction * total)`: the fraction of the error
/// budget consumed over a horizon. `None` when the horizon is empty or
/// the objective allows nothing (budget 0 with 0 bad is vacuously fine;
/// budget 0 with bad > 0 reports infinity).
fn budget_consumed(bad: u64, total: u64, objective: f64) -> Option<f64> {
    if total == 0 {
        return None;
    }
    let budget = (1.0 - objective) * total as f64;
    if budget <= 0.0 {
        return (bad > 0).then_some(f64::INFINITY);
    }
    Some(bad as f64 / budget)
}

fn burn_of(w: &Window, slo: &Slo, span: usize) -> BurnRate {
    let successes = w.total - w.errors;
    let availability =
        ratio(w.errors, w.total).map(|error_rate| burn_ratio(error_rate, 1.0 - slo.availability));
    let latency =
        ratio(w.slow, successes).map(|slow_rate| burn_ratio(slow_rate, 1.0 - slo.latency.quantile));
    BurnRate {
        windows: span,
        samples: w.total,
        availability,
        latency,
    }
}

fn burn_ratio(bad_rate: f64, allowed: f64) -> f64 {
    if allowed <= 0.0 {
        if bad_rate > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        bad_rate / allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo99() -> Slo {
        // Availability 99%, p90 <= 10 ms: round numbers so every expected
        // value below is hand-computable.
        Slo {
            name: "test".to_string(),
            availability: 0.99,
            latency: LatencyObjective {
                quantile: 0.9,
                threshold: 0.010,
            },
        }
    }

    #[test]
    fn burn_rate_matches_hand_computation() {
        let t = SloTracker::new(slo99(), 4);
        // 100 requests: 2 errors, 98 successes of which 20 are slow.
        for i in 0..100 {
            if i < 2 {
                t.record(0.0, false);
            } else if i < 22 {
                t.record(0.050, true); // slow: 50 ms > 10 ms
            } else {
                t.record(0.001, true);
            }
        }
        let b = t.burn_rate(1);
        assert_eq!(b.samples, 100);
        // error rate 2/100 = 0.02; allowed 0.01 → burn 2.0 exactly.
        assert!((b.availability.unwrap() - 2.0).abs() < 1e-12);
        // slow rate 20/98; allowed 0.1 → burn 200/98.
        assert!((b.latency.unwrap() - 200.0 / 98.0).abs() < 1e-12);
    }

    #[test]
    fn multi_window_burn_separates_fast_and_slow() {
        let t = SloTracker::new(slo99(), 3);
        // Window 1: clean. Window 2: clean. Window 3: on fire.
        for _ in 0..100 {
            t.record(0.001, true);
        }
        t.rotate();
        for _ in 0..100 {
            t.record(0.001, true);
        }
        t.rotate();
        for i in 0..100 {
            t.record(0.001, i % 10 != 0); // 10 errors
        }
        let fast = t.burn_rate(1);
        let slow = t.burn_rate(3);
        // Fast: 10/100 error rate over 0.01 → 10x.
        assert!((fast.availability.unwrap() - 10.0).abs() < 1e-12);
        // Slow: 10/300 over 0.01 → 10/3 x.
        assert!((slow.availability.unwrap() - 10.0 / 3.0).abs() < 1e-9);
        // A span beyond the retained horizon clamps.
        assert_eq!(t.burn_rate(99).windows, 3);
    }

    #[test]
    fn budget_consumption_and_status() {
        let t = SloTracker::new(slo99(), 2);
        // 200 requests, 1 error: budget is 2 allowed errors → half consumed.
        t.record(0.0, false);
        for _ in 0..199 {
            t.record(0.001, true);
        }
        let s = t.status();
        assert_eq!(s.samples, 200);
        assert_eq!(s.errors, 1);
        assert!((s.availability.unwrap() - 199.0 / 200.0).abs() < 1e-12);
        assert!((s.availability_budget_consumed.unwrap() - 0.5).abs() < 1e-12);
        // No slow successes: latency budget untouched, compliance 1.
        assert_eq!(s.latency_budget_consumed, Some(0.0));
        assert_eq!(s.latency_compliance, Some(1.0));
        // Status carries fast + slow burn spans.
        assert_eq!(s.burn.len(), 2);
        assert_eq!(s.burn[0].windows, 1);
        assert_eq!(s.burn[1].windows, 1); // only one window retained so far
        let text = s.render_text();
        assert!(text.contains("budget consumed 50.000%"), "{text}");
        multidim_trace::json::Json::parse(&s.to_json().render()).expect("valid JSON");
    }

    #[test]
    fn empty_tracker_reports_none_not_zero() {
        let t = SloTracker::new(slo99(), 2);
        let s = t.status();
        assert_eq!(s.availability, None);
        assert_eq!(s.availability_budget_consumed, None);
        assert_eq!(s.burn[0].availability, None);
        assert!(s.render_text().contains('-'));
    }

    #[test]
    fn rotation_ages_out_old_windows() {
        let t = SloTracker::new(slo99(), 2);
        for _ in 0..50 {
            t.record(0.0, false); // catastrophic first window
        }
        t.rotate();
        for _ in 0..100 {
            t.record(0.001, true);
        }
        assert_eq!(t.status().errors, 50, "both windows retained");
        t.rotate();
        for _ in 0..100 {
            t.record(0.001, true);
        }
        let s = t.status();
        assert_eq!(s.errors, 0, "the bad window aged out");
        assert_eq!(s.samples, 200);
    }

    #[test]
    fn perfect_objective_burns_infinitely_on_any_error() {
        let mut slo = slo99();
        slo.availability = 1.0; // no budget at all
        let t = SloTracker::new(slo, 1);
        t.record(0.001, true);
        assert_eq!(t.burn_rate(1).availability, Some(0.0));
        t.record(0.0, false);
        assert_eq!(t.burn_rate(1).availability, Some(f64::INFINITY));
    }
}
