//! Log-bucketed, lock-free, mergeable histograms.
//!
//! The bucket layout is fixed at compile time: [`SUB_BUCKETS`] buckets per
//! octave (powers of two), spanning `2^MIN_EXP ..= 2^MAX_EXP`, plus an
//! underflow and an overflow bucket. Two consequences the rest of the
//! crate leans on:
//!
//! * **bounded relative error** — a bucket's bounds differ by a factor of
//!   `2^(1/8) ≈ 1.09`, so a quantile reported at the geometric midpoint is
//!   within ~4.5% of the true sample value (and exact for a histogram with
//!   a single distinct value, because estimates clamp to the observed
//!   min/max);
//! * **exact merges** — every histogram shares the identical layout, so
//!   merging two snapshots is element-wise addition of counts: merging
//!   window A and window B gives bucket-for-bucket the same histogram as
//!   recording all of A's and B's samples into one histogram.
//!
//! [`Histogram`] is the concurrent form (atomic counters, `&self`
//! recording, safe to share across engine workers); [`HistogramSnapshot`]
//! is the plain-data form used for quantile math, merging, and
//! sliding-window aggregation ([`SlidingWindow`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sub-buckets per octave (power of two). 8 gives a `2^(1/8)` bucket
/// growth factor: ≤ ~9% bucket width, ≤ ~4.5% midpoint error.
pub const SUB_BUCKETS: usize = 8;
/// Smallest representable exponent: values below `2^MIN_EXP` (≈ 1e-9,
/// comfortably under a nanosecond when recording seconds) underflow.
const MIN_EXP: i32 = -30;
/// Largest representable exponent: values at or above `2^MAX_EXP`
/// (≈ 1.7e10) overflow.
const MAX_EXP: i32 = 34;
/// Total bucket count: the log-spaced range plus underflow and overflow.
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUB_BUCKETS + 2;

/// Bucket index for a value. Bucket 0 is underflow (non-positive or tiny
/// values), bucket `BUCKETS - 1` is overflow.
fn bucket_index(value: f64) -> usize {
    let log = value.log2(); // NaN for negative, -inf for 0: both underflow
    if log.is_nan() || log < MIN_EXP as f64 {
        return 0;
    }
    let idx = ((log - MIN_EXP as f64) * SUB_BUCKETS as f64).floor() as usize + 1;
    idx.min(BUCKETS - 1)
}

/// Geometric midpoint of a regular bucket (1 ..= BUCKETS-2).
fn bucket_mid(index: usize) -> f64 {
    let exp = MIN_EXP as f64 + (index as f64 - 0.5) / SUB_BUCKETS as f64;
    exp.exp2()
}

fn atomic_f64_add(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn atomic_f64_min(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn atomic_f64_max(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// An exemplar: the trace id of one recent sample in a bucket, linking a
/// histogram's tail back to a kept trace in the tail sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// 128-bit trace id of the exemplified request.
    pub trace_id: u128,
    /// The recorded sample value (e.g. latency in seconds).
    pub value: f64,
}

impl Exemplar {
    /// The trace id as the 32-char lowercase hex used in expositions.
    pub fn trace_hex(&self) -> String {
        multidim_trace::trace_id_hex(self.trace_id)
    }
}

/// A thread-safe log-bucketed histogram. Recording is lock-free
/// (`&self`, relaxed atomics); reading goes through [`Histogram::snapshot`].
/// Exemplars (one recent traced sample per bucket) sit behind a single
/// mutex taken only on the [`Histogram::record_with_exemplar`] path.
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    exemplars: Mutex<std::collections::BTreeMap<usize, Exemplar>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("sum", &s.sum())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        // `[AtomicU64; BUCKETS]` has no Default for large N; build by hand.
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> = counts
            .into_boxed_slice()
            .try_into()
            .expect("length matches BUCKETS");
        Histogram {
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            exemplars: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Record one sample. NaN samples are ignored; non-positive samples
    /// land in the underflow bucket.
    pub fn record(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, value);
        atomic_f64_min(&self.min_bits, value);
        atomic_f64_max(&self.max_bits, value);
    }

    /// Record one sample that belongs to a kept trace: like
    /// [`Histogram::record`], and additionally remembers `trace_id` as
    /// the exemplar for the sample's bucket (latest write wins). Callers
    /// should only pass ids of traces the tail sampler *kept*, so every
    /// published exemplar resolves to a stored trace.
    pub fn record_with_exemplar(&self, value: f64, trace_id: u128) {
        if value.is_nan() {
            return;
        }
        self.record(value);
        let bucket = bucket_index(value);
        self.exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(bucket, Exemplar { trace_id, value });
    }

    /// The exemplar stored for `bucket`, if any.
    pub fn exemplar(&self, bucket: usize) -> Option<Exemplar> {
        self.exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&bucket)
            .copied()
    }

    /// Every stored exemplar as `(bucket, exemplar)`, ascending bucket.
    pub fn exemplars(&self) -> Vec<(usize, Exemplar)> {
        self.exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(b, e)| (*b, *e))
            .collect()
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain-data copy for quantile math and merging. Concurrent
    /// recorders may land between field reads; each field is individually
    /// consistent, which is all quantile estimation needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: counts.iter().sum(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            counts,
        }
    }

    /// Estimated quantile (`q` in `[0, 1]`) of everything recorded so
    /// far; `None` when empty. Shorthand for `snapshot().quantile(q)`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }
}

/// Plain-data histogram state: bucket counts plus exact count/sum/min/max.
/// Produced by [`Histogram::snapshot`] or built up directly with
/// [`HistogramSnapshot::record`]; merge freely — all snapshots share one
/// bucket layout.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::new()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample (single-threaded counterpart of
    /// [`Histogram::record`]).
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The raw bucket counts (length [`BUCKETS`]): underflow, the
    /// log-spaced range, overflow.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fold another snapshot into this one. Identical layouts make this
    /// exact: the result is bucket-for-bucket what one histogram over the
    /// union of both sample sets would hold.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimated quantile (`q` in `[0, 1]`, clamped): the sample at rank
    /// `round(q * (count - 1))`, reported at its bucket's geometric
    /// midpoint and clamped to the observed `[min, max]`. `None` when the
    /// snapshot is empty.
    ///
    /// The clamp makes degenerate cases exact: a single sample (or any
    /// all-equal sample set) reports the sample itself at every quantile,
    /// and the extremes (`q = 0`, `q = 1`) report exact min/max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)).round() as u64;
        if rank == 0 {
            return Some(self.min);
        }
        if rank == self.count - 1 {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                let est = if i == 0 {
                    self.min // underflow: no midpoint, use the exact floor
                } else if i == BUCKETS - 1 {
                    self.max // overflow: use the exact ceiling
                } else {
                    bucket_mid(i)
                };
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max) // unreachable if counts is consistent with count
    }

    /// The bucket index holding the sample at quantile `q` — the bucket
    /// whose exemplar (if any) exemplifies that quantile. `None` when
    /// empty. Uses the same rank rule as [`HistogramSnapshot::quantile`].
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return Some(i);
            }
        }
        None // unreachable if counts is consistent with count
    }
}

/// Sliding-window aggregation: the last `windows` rotations of samples,
/// merged on demand. The caller decides the rotation cadence by calling
/// [`SlidingWindow::rotate`] (e.g. once per round, once per second) —
/// explicit rotation keeps the type deterministic and testable.
pub struct SlidingWindow {
    inner: Mutex<WindowState>,
}

struct WindowState {
    slots: std::collections::VecDeque<HistogramSnapshot>,
    capacity: usize,
}

impl SlidingWindow {
    /// A window over the last `windows` rotations (at least 1).
    pub fn new(windows: usize) -> SlidingWindow {
        let mut slots = std::collections::VecDeque::new();
        slots.push_back(HistogramSnapshot::new());
        SlidingWindow {
            inner: Mutex::new(WindowState {
                slots,
                capacity: windows.max(1),
            }),
        }
    }

    /// Record into the current (newest) window.
    pub fn record(&self, value: f64) {
        let mut s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        s.slots.back_mut().expect("at least one slot").record(value);
    }

    /// Start a fresh window, dropping the oldest once more than the
    /// configured number are retained.
    pub fn rotate(&self) {
        let mut s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        s.slots.push_back(HistogramSnapshot::new());
        while s.slots.len() > s.capacity {
            s.slots.pop_front();
        }
    }

    /// Merge of every retained window.
    pub fn merged(&self) -> HistogramSnapshot {
        let s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = HistogramSnapshot::new();
        for slot in &s.slots {
            out.merge(slot);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let h = Histogram::new();
        h.record(0.00137);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), Some(0.00137), "q={q}");
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum(), 0.00137);
        assert_eq!(s.min(), Some(0.00137));
        assert_eq!(s.max(), Some(0.00137));
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        // Uniform 1..=1000: every estimate must be within the bucket
        // growth factor of the true order statistic.
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        let tol = 2f64.powf(1.0 / SUB_BUCKETS as f64); // one bucket width
        for (q, truth) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = s.quantile(q).unwrap();
            assert!(
                est / truth < tol && truth / est < tol,
                "q={q}: est {est} vs truth {truth}"
            );
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn bucket_boundaries_are_stable() {
        // Exact powers of two sit on bucket boundaries; they must land in
        // the bucket whose lower bound they are, and the estimate must
        // stay within one bucket of the value.
        for exp in [-20i32, -8, -1, 0, 1, 10, 30] {
            let v = (exp as f64).exp2();
            let idx = bucket_index(v);
            assert!(idx > 0 && idx < BUCKETS - 1, "2^{exp} in range");
            // The next representable value below must land one bucket down.
            let below = v * (1.0 - 1e-12);
            assert_eq!(bucket_index(below), idx - 1, "2^{exp} is a lower bound");
            let h = Histogram::new();
            h.record(v);
            h.record(v);
            let est = h.quantile(0.5).unwrap();
            assert_eq!(est, v, "all-equal clamps to the exact value");
        }
    }

    #[test]
    fn underflow_and_overflow_are_counted_and_clamped() {
        let h = Histogram::new();
        h.record(0.0); // underflow
        h.record(-5.0); // underflow
        h.record(1e300); // overflow
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.0), Some(-5.0));
        assert_eq!(s.quantile(1.0), Some(1e300));
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_equals_merged_samples() {
        // Two windows merged must be bucket-for-bucket identical to one
        // histogram over the concatenated samples (exact, not approximate).
        let a_samples: Vec<f64> = (1..=500).map(|i| i as f64 * 0.37).collect();
        let b_samples: Vec<f64> = (1..=700).map(|i| i as f64 * 1.13).collect();
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        let mut all = HistogramSnapshot::new();
        for &v in &a_samples {
            a.record(v);
            all.record(v);
        }
        for &v in &b_samples {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.bucket_counts(), all.bucket_counts());
        assert_eq!(merged.count(), all.count());
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
        // Sums agree up to float addition order.
        assert!((merged.sum() - all.sum()).abs() < 1e-6 * all.sum().abs());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn sliding_window_drops_old_rotations() {
        let w = SlidingWindow::new(2);
        w.record(1.0);
        w.rotate();
        w.record(10.0);
        assert_eq!(w.merged().count(), 2); // both windows retained
        w.rotate();
        w.record(100.0);
        let m = w.merged(); // the 1.0 window has aged out
        assert_eq!(m.count(), 2);
        assert_eq!(m.min(), Some(10.0));
        assert_eq!(m.max(), Some(100.0));
    }

    #[test]
    fn exemplars_track_buckets_latest_wins() {
        let h = Histogram::new();
        assert!(h.exemplars().is_empty());
        h.record(0.010); // no exemplar: plain record
        h.record_with_exemplar(0.010, 0xaaaa);
        h.record_with_exemplar(0.010, 0xbbbb); // same bucket: replaces
        h.record_with_exemplar(0.080, 0xcccc); // different bucket
        let ex = h.exemplars();
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].1.trace_id, 0xbbbb);
        assert_eq!(ex[0].1.value, 0.010);
        assert_eq!(ex[1].1.trace_id, 0xcccc);
        assert_eq!(h.exemplar(ex[1].0).unwrap().trace_id, 0xcccc);
        assert_eq!(h.exemplar(0), None);
        // The p99 bucket's exemplar resolves to the tail sample.
        let s = h.snapshot();
        let p99_bucket = s.quantile_bucket(0.99).unwrap();
        assert_eq!(h.exemplar(p99_bucket).unwrap().trace_id, 0xcccc);
        assert_eq!(ex[1].1.trace_hex(), format!("{:032x}", 0xcccc_u128));
    }

    #[test]
    fn quantile_bucket_matches_quantile_estimate() {
        let mut s = HistogramSnapshot::new();
        assert_eq!(s.quantile_bucket(0.5), None);
        for i in 1..=1000 {
            s.record(i as f64 * 0.001);
        }
        for q in [0.5, 0.9, 0.99] {
            let bucket = s.quantile_bucket(q).unwrap();
            let est = s.quantile(q).unwrap();
            // The reported quantile lies inside (or clamps against) the
            // bucket the index points to.
            assert!(bucket > 0 && bucket < BUCKETS - 1);
            let width = 2f64.powf(1.0 / SUB_BUCKETS as f64);
            assert!(est / bucket_mid(bucket) <= width && bucket_mid(bucket) / est <= width);
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 + 0.5);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 8000);
        assert_eq!(snap.min(), Some(0.5));
        assert_eq!(snap.max(), Some(7999.5));
    }
}
