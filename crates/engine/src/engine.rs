//! The engine: a concurrent compile/run service over the multidim
//! pipeline.

use crate::cache::{CacheStats, CompileCache};
use crate::error::EngineError;
use crate::pool::WorkerPool;
use crate::store::{LoadOutcome, TuneRecord, TuningStore};
use multidim::{Compiler, Executable, Fingerprint, RunReport};
use multidim_ir::{ArrayId, Bindings, Program};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine sizing and policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Default: available parallelism, capped at 8.
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue rejects
    /// ([`EngineError::Rejected`]) instead of blocking. Default 64.
    pub queue_capacity: usize,
    /// Compilation-cache capacity (ready executables). Default 128.
    pub cache_capacity: usize,
    /// Deadline applied to requests that don't carry their own; `None`
    /// means no deadline. Checked when a worker dequeues the request and
    /// again between its compile and run phases (the phases themselves
    /// are not preempted).
    pub default_deadline: Option<Duration>,
    /// Where to persist tuned mappings; `None` keeps them in memory only.
    pub store_path: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            queue_capacity: 64,
            cache_capacity: 128,
            default_deadline: None,
            store_path: None,
        }
    }
}

/// One compile+run request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The program to compile (or fetch from cache) and execute.
    pub program: Program,
    /// Launch-size bindings.
    pub bindings: Bindings,
    /// Input arrays.
    pub inputs: HashMap<ArrayId, Vec<f64>>,
    /// Per-request deadline override (else [`EngineConfig::default_deadline`]).
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request with no private deadline.
    pub fn new(
        program: Program,
        bindings: Bindings,
        inputs: HashMap<ArrayId, Vec<f64>>,
    ) -> Request {
        Request {
            program,
            bindings,
            inputs,
            deadline: None,
        }
    }
}

/// A served request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Content address of the compiled artifact.
    pub fingerprint: Fingerprint,
    /// The shared executable — pointer-equal across cache hits.
    pub executable: Arc<Executable>,
    /// Simulation outcome (outputs, simulated seconds, per-kernel data).
    pub run: RunReport,
    /// `false` when this request compiled the executable; `true` when it
    /// reused a cached one.
    pub cache_hit: bool,
    /// `true` when the mapping came from the persistent tuning store
    /// rather than the analytic search.
    pub tuned: bool,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Worker time (fingerprint + compile-or-hit + run).
    pub service_time: Duration,
}

/// Handle to an in-flight request.
pub struct Ticket {
    rx: Receiver<Result<Response, EngineError>>,
}

impl Ticket {
    /// Block until the response arrives.
    pub fn wait(self) -> Result<Response, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::Canceled))
    }

    /// Block up to `timeout`. On timeout the request keeps running but
    /// its result is discarded.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response, EngineError> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => Err(EngineError::WaitTimeout { waited: timeout }),
            Err(RecvTimeoutError::Disconnected) => Err(EngineError::Canceled),
        }
    }
}

/// Aggregate request counters (monotonic since engine construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Requests that failed (compile, run, deadline, panic).
    pub failed: u64,
    /// Requests whose deadline expired.
    pub expired: u64,
    /// Requests that panicked in a worker (isolated, worker survived).
    pub panicked: u64,
    /// Requests served with a mapping from the tuning store.
    pub tuned_served: u64,
}

#[derive(Default)]
struct AtomicEngineStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    panicked: AtomicU64,
    tuned_served: AtomicU64,
}

struct Shared {
    compiler: Arc<Compiler>,
    cache: CompileCache,
    store: TuningStore,
    stats: AtomicEngineStats,
}

/// The concurrent compile/run engine. See the crate docs for the full
/// tour; in short:
///
/// * [`Engine::submit`] enqueues one request (backpressure on a full
///   queue) and returns a [`Ticket`];
/// * [`Engine::run_batch`] drives a whole batch through the queue with
///   flow control and collects every result;
/// * [`Engine::autotune`] measures mapping candidates across the worker
///   pool and persists the winner in the tuning store, after which
///   matching requests transparently use the tuned mapping.
pub struct Engine {
    shared: Arc<Shared>,
    pool: WorkerPool,
    store_load: LoadOutcome,
    default_deadline: Option<Duration>,
}

impl Engine {
    /// Build an engine around `compiler` (the compiler is shared,
    /// immutable, by every worker).
    pub fn new(compiler: Compiler, config: EngineConfig) -> Engine {
        let (store, store_load) = match &config.store_path {
            Some(path) => TuningStore::open(path),
            None => (TuningStore::in_memory(), LoadOutcome::default()),
        };
        Engine {
            shared: Arc::new(Shared {
                compiler: compiler.shared(),
                cache: CompileCache::new(config.cache_capacity),
                store,
                stats: AtomicEngineStats::default(),
            }),
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            store_load,
            default_deadline: config.default_deadline,
        }
    }

    /// An engine with the paper's default compiler and default sizing.
    pub fn with_defaults() -> Engine {
        Engine::new(Compiler::new(), EngineConfig::default())
    }

    /// What the tuning store found on disk at startup.
    pub fn store_load(&self) -> &LoadOutcome {
        &self.store_load
    }

    /// Enqueue one request.
    ///
    /// # Errors
    ///
    /// [`EngineError::Rejected`] when the bounded queue is full (typed
    /// backpressure — the call never blocks), [`EngineError::ShuttingDown`]
    /// when the pool is draining.
    pub fn submit(&self, request: Request) -> Result<Ticket, EngineError> {
        let (tx, rx) = channel();
        let shared = self.shared.clone();
        let deadline = request.deadline.or(self.default_deadline);
        let enqueued = Instant::now();
        let job = Box::new(move || {
            process_request(&shared, request, deadline, enqueued, &tx);
        });
        match self.pool.try_submit(job) {
            Ok(()) => {
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx })
            }
            Err(Some(_full)) => {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(EngineError::Rejected {
                    queue_depth: self.pool.queue_depth(),
                })
            }
            Err(None) => Err(EngineError::ShuttingDown),
        }
    }

    /// Drive a whole batch through the bounded queue: submit with flow
    /// control (when the queue is full, wait for the oldest in-flight
    /// request instead of spinning), and return one result per request,
    /// in request order.
    pub fn run_batch(&self, requests: Vec<Request>) -> Vec<Result<Response, EngineError>> {
        let n = requests.len();
        let mut results: Vec<Option<Result<Response, EngineError>>> =
            (0..n).map(|_| None).collect();
        let mut inflight: Vec<(usize, Ticket)> = Vec::new();
        for (i, req) in requests.into_iter().enumerate() {
            loop {
                match self.submit(req.clone()) {
                    Ok(ticket) => {
                        inflight.push((i, ticket));
                        break;
                    }
                    Err(EngineError::Rejected { .. }) if !inflight.is_empty() => {
                        // Flow control: retire the oldest in-flight
                        // request, freeing a queue slot, then retry.
                        let (j, ticket) = inflight.remove(0);
                        results[j] = Some(ticket.wait());
                    }
                    Err(EngineError::Rejected { .. }) => {
                        // Queue full with nothing of ours in flight (other
                        // submitters): back off briefly and retry.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => {
                        results[i] = Some(Err(e));
                        break;
                    }
                }
            }
        }
        for (i, ticket) in inflight {
            results[i] = Some(ticket.wait());
        }
        results
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect()
    }

    /// Tune `program`'s mapping by measuring candidates **in parallel
    /// across the worker pool**, then persist the winner so subsequent
    /// [`Engine::submit`]s of the same request transparently use it.
    ///
    /// Selection tie-breaks on candidate index (see
    /// [`multidim_mapping::select`]), so the result is identical to the
    /// serial [`Compiler::autotune`]. Candidates that cannot be enqueued
    /// (full queue) are measured inline on the calling thread — tuning
    /// degrades to partial parallelism under load rather than failing or
    /// deadlocking.
    ///
    /// # Errors
    ///
    /// [`EngineError::Compile`] when validation fails or no candidate is
    /// executable.
    pub fn autotune(
        &self,
        program: &Program,
        bindings: &Bindings,
        inputs: &HashMap<ArrayId, Vec<f64>>,
        options: &multidim_mapping::TuneOptions,
    ) -> Result<(Arc<Executable>, TuneRecord), EngineError> {
        let compiler = &self.shared.compiler;
        let prepared = Arc::new(compiler.prepare_tune(program, bindings, options)?);
        let n = prepared.plan.candidates.len();
        let bindings_shared = Arc::new(bindings.clone());
        let inputs_shared = Arc::new(inputs.clone());

        let (tx, rx) = channel::<(usize, Option<f64>)>();
        let mut pending = 0usize;
        for index in 0..n {
            let job_ctx = (
                self.shared.clone(),
                prepared.clone(),
                bindings_shared.clone(),
                inputs_shared.clone(),
                tx.clone(),
            );
            let job = Box::new(move || {
                let (shared, prepared, bindings, inputs, tx) = job_ctx;
                let mapping = &prepared.plan.candidates[index].mapping;
                let cost = catch_unwind(AssertUnwindSafe(|| {
                    shared
                        .compiler
                        .measure_candidate(&prepared, &bindings, &inputs, mapping)
                }))
                .unwrap_or(None);
                let _ = tx.send((index, cost));
            });
            match self.pool.try_submit(job) {
                Ok(()) => pending += 1,
                Err(rejected) => {
                    // Queue full or shutting down: measure inline.
                    if let Some(crate::pool::QueueFull(job)) = rejected {
                        job();
                        pending += 1;
                    } else {
                        let mapping = &prepared.plan.candidates[index].mapping;
                        let cost = compiler.measure_candidate(&prepared, bindings, inputs, mapping);
                        let _ = tx.send((index, cost));
                        pending += 1;
                    }
                }
            }
        }
        drop(tx);

        let mut costs: Vec<Option<f64>> = vec![None; n];
        for _ in 0..pending {
            match rx.recv() {
                Ok((index, cost)) => costs[index] = cost,
                Err(_) => break,
            }
        }

        // Honor `max_measurements` with serial semantics: the serial tuner
        // attempts candidates in score order and stops once that many have
        // measured successfully, so discard exactly the costs it would
        // never have observed.
        let mut successes = 0usize;
        for cost in costs.iter_mut() {
            if successes >= options.max_measurements {
                *cost = None;
            } else if cost.is_some() {
                successes += 1;
            }
        }

        let result = multidim_mapping::select(&prepared.plan, &costs).ok_or_else(|| {
            EngineError::Compile(multidim::CompileError(
                "no mapping candidate was executable".into(),
            ))
        })?;

        // The analytic winner is the plan's highest-scored candidate
        // (index 0): record its measured cost for the analytic-vs-tuned
        // delta.
        let analytic_cost = costs.first().copied().flatten();
        let record = TuneRecord {
            fingerprint: compiler.fingerprint(program, bindings),
            program: program.name.clone(),
            mapping: result.best.clone(),
            tuned_cost: result.best_cost,
            analytic_cost,
            measured: result.measured.len() as u64,
        };
        self.shared.store.insert(record.clone());
        let _ = self.shared.store.save();
        if multidim_trace::enabled() {
            let mut ev = multidim_trace::Event::gauge("engine", "autotune")
                .arg("program", record.program.as_str())
                .arg("tuned_cost", record.tuned_cost)
                .arg("measured", record.measured);
            if let Some(delta) = record.analytic_delta() {
                ev = ev.arg("analytic_delta", delta);
            }
            multidim_trace::emit(ev);
        }

        let exe = Arc::new(compiler.compile_tuned(&prepared, bindings, result.best.clone())?);
        // Replace any analytically-mapped cache entry so subsequent
        // requests are served the tuned executable immediately.
        self.shared.cache.insert(record.fingerprint, exe.clone());
        Ok((exe, record))
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Request counters.
    pub fn stats(&self) -> EngineStats {
        let s = &self.shared.stats;
        EngineStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            expired: s.expired.load(Ordering::Relaxed),
            panicked: s.panicked.load(Ordering::Relaxed),
            tuned_served: s.tuned_served.load(Ordering::Relaxed),
        }
    }

    /// Current queue depth (requests waiting for a worker).
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Number of tuning-store records.
    pub fn store_len(&self) -> usize {
        self.shared.store.len()
    }

    /// Emit engine + cache counters as `multidim-trace` gauge events on
    /// the calling thread's sink.
    pub fn emit_stats(&self) {
        if multidim_trace::enabled() {
            let s = self.stats();
            multidim_trace::emit(
                multidim_trace::Event::gauge("engine", "requests")
                    .arg("submitted", s.submitted)
                    .arg("completed", s.completed)
                    .arg("rejected", s.rejected)
                    .arg("failed", s.failed)
                    .arg("expired", s.expired)
                    .arg("panicked", s.panicked)
                    .arg("tuned_served", s.tuned_served)
                    .arg("queue_depth", self.queue_depth()),
            );
        }
        self.shared.cache.emit_trace();
    }

    /// Persist the tuning store now (also happens on shutdown/drop).
    ///
    /// # Errors
    ///
    /// Propagates the underlying IO failure.
    pub fn flush(&self) -> Result<(), std::io::Error> {
        self.shared.store.save()
    }

    /// Drain the queue, join the workers, and persist the tuning store.
    /// Also performed on drop.
    pub fn shutdown(mut self) {
        self.pool.shutdown();
        let _ = self.shared.store.save();
    }
}

fn process_request(
    shared: &Shared,
    request: Request,
    deadline: Option<Duration>,
    enqueued: Instant,
    tx: &Sender<Result<Response, EngineError>>,
) {
    let queue_wait = enqueued.elapsed();
    // Deadline check #1: the request may have expired while queued.
    if let Some(d) = deadline {
        if queue_wait > d {
            shared.stats.expired.fetch_add(1, Ordering::Relaxed);
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Err(EngineError::DeadlineExceeded { waited: queue_wait }));
            return;
        }
    }
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        serve(shared, &request, deadline, enqueued)
    }));
    let result = match outcome {
        Ok(r) => r,
        Err(payload) => {
            shared.stats.panicked.fetch_add(1, Ordering::Relaxed);
            Err(EngineError::WorkerPanic(panic_message(payload.as_ref())))
        }
    };
    let result = result.map(|(fingerprint, executable, run, cache_hit, tuned)| {
        if tuned {
            shared.stats.tuned_served.fetch_add(1, Ordering::Relaxed);
        }
        Response {
            fingerprint,
            executable,
            run,
            cache_hit,
            tuned,
            queue_wait,
            service_time: started.elapsed(),
        }
    });
    match &result {
        Ok(_) => {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        }
        Err(EngineError::DeadlineExceeded { .. }) => {
            shared.stats.expired.fetch_add(1, Ordering::Relaxed);
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    let _ = tx.send(result);
}

type Served = (Fingerprint, Arc<Executable>, RunReport, bool, bool);

fn serve(
    shared: &Shared,
    request: &Request,
    deadline: Option<Duration>,
    enqueued: Instant,
) -> Result<Served, EngineError> {
    let fp = shared
        .compiler
        .fingerprint(&request.program, &request.bindings);
    let tuned_record = shared.store.get(fp);
    let tuned = tuned_record.is_some();
    let mut cache_hit = true;
    let exe = shared.cache.get_or_compile(fp, || {
        cache_hit = false;
        match &tuned_record {
            // Prefer the empirically best mapping from the store; fall
            // back to the analytic pipeline if it no longer lowers.
            Some(rec) => shared
                .compiler
                .compile_with_mapping(&request.program, &request.bindings, rec.mapping.clone())
                .or_else(|_| shared.compiler.compile(&request.program, &request.bindings)),
            None => shared.compiler.compile(&request.program, &request.bindings),
        }
    })?;
    // Deadline check #2: compiling may have eaten the budget.
    if let Some(d) = deadline {
        let waited = enqueued.elapsed();
        if waited > d {
            return Err(EngineError::DeadlineExceeded { waited });
        }
    }
    let run = exe.run(&request.inputs)?;
    Ok((fp, exe, run, cache_hit, tuned))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
