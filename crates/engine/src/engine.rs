//! The engine: a concurrent compile/run service over the multidim
//! pipeline.

use crate::cache::{CacheStats, CompileCache};
use crate::error::EngineError;
use crate::pool::WorkerPool;
use crate::store::{LoadOutcome, TuneRecord, TuningStore};
use multidim::{Compiler, Executable, Fingerprint, RunReport};
use multidim_ir::{ArrayId, Bindings, Program};
use multidim_obs::{
    Counter, CounterFamily, FlightRecorder, Histogram, HistogramFamily, PhaseBreakdown, PostMortem,
    Registry, RequestProfile, SearchBreakdown,
};
use multidim_trace::{instant_us, Sink, SpanRecord, TraceContext, TraceOutcome};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Post-mortem bundles retained by the engine (oldest dropped first).
const POST_MORTEM_CAP: usize = 32;

/// Engine sizing and policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Default: available parallelism, capped at 8.
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue rejects
    /// ([`EngineError::Rejected`]) instead of blocking. Default 64.
    pub queue_capacity: usize,
    /// Compilation-cache capacity (ready executables). Default 128.
    pub cache_capacity: usize,
    /// Deadline applied to requests that don't carry their own; `None`
    /// means no deadline. Checked when a worker dequeues the request and
    /// again between its compile and run phases (the phases themselves
    /// are not preempted).
    pub default_deadline: Option<Duration>,
    /// Where to persist tuned mappings; `None` keeps them in memory only.
    pub store_path: Option<PathBuf>,
    /// Trace events each worker retains for post-mortem bundles (the
    /// flight recorder's per-thread ring size). `0` disables the recorder
    /// — workers then trace only to an explicitly installed shared sink.
    /// Default 128.
    pub flight_recorder_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            queue_capacity: 64,
            cache_capacity: 128,
            default_deadline: None,
            store_path: None,
            flight_recorder_capacity: 128,
        }
    }
}

/// One compile+run request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The program to compile (or fetch from cache) and execute.
    pub program: Program,
    /// Launch-size bindings.
    pub bindings: Bindings,
    /// Input arrays.
    pub inputs: HashMap<ArrayId, Vec<f64>>,
    /// Per-request deadline override (else [`EngineConfig::default_deadline`]).
    pub deadline: Option<Duration>,
    /// Request-scoped trace context. `None` lets the engine mint one at
    /// submission (when a trace store is installed); an upstream tier
    /// (the sharded front door) sets it to stitch its own spans and the
    /// engine's into one trace — whoever minted the context owns the
    /// root span and the tail-sampling decision.
    pub trace: Option<TraceContext>,
    /// When the request was first admitted upstream. Queue accounting
    /// uses this instead of the submission instant, so a spilled
    /// resubmission is charged for its *full* wait, not just the slice
    /// after the retry. `None` means "admitted now".
    pub admitted_at: Option<Instant>,
}

impl Request {
    /// A request with no private deadline.
    pub fn new(
        program: Program,
        bindings: Bindings,
        inputs: HashMap<ArrayId, Vec<f64>>,
    ) -> Request {
        Request {
            program,
            bindings,
            inputs,
            deadline: None,
            trace: None,
            admitted_at: None,
        }
    }
}

/// A served request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Content address of the compiled artifact.
    pub fingerprint: Fingerprint,
    /// The shared executable — pointer-equal across cache hits.
    pub executable: Arc<Executable>,
    /// Simulation outcome (outputs, simulated seconds, per-kernel data).
    pub run: RunReport,
    /// `false` when this request compiled the executable; `true` when it
    /// reused a cached one.
    pub cache_hit: bool,
    /// `true` when the mapping came from the persistent tuning store
    /// rather than the analytic search.
    pub tuned: bool,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Worker time (fingerprint + compile-or-hit + run).
    pub service_time: Duration,
    /// Time resolving the executable: a cache lookup on a hit, the full
    /// pipeline on a miss.
    pub compile_time: Duration,
    /// Time executing on the simulator (wall clock).
    pub run_time: Duration,
    /// The trace context the request ran under, when tracing was on.
    pub trace: Option<TraceContext>,
}

/// The completion slot shared by a [`Ticket`] and its worker-side
/// [`TicketSender`]: a mutex-guarded state cell plus a condvar, so
/// waiters *block* on resolution instead of busy-sweeping a channel.
struct TicketSlot {
    state: Mutex<SlotState>,
    resolved: Condvar,
}

enum SlotState {
    /// The request is queued or running.
    Pending,
    /// The result arrived and nobody consumed it yet.
    Ready(Box<Result<Response, EngineError>>),
    /// The result was consumed by `wait`/`poll`.
    Taken,
}

impl TicketSlot {
    fn new() -> TicketSlot {
        TicketSlot {
            state: Mutex::new(SlotState::Pending),
            resolved: Condvar::new(),
        }
    }

    /// Publish the result (first write wins) and wake every waiter.
    fn fulfill(&self, result: Result<Response, EngineError>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Ready(Box::new(result));
        }
        drop(state);
        self.resolved.notify_all();
    }
}

/// Worker-side handle: fulfills the slot with the response, or — if the
/// job is dropped unrun (pool shutdown, rejected submission) — with
/// [`EngineError::Canceled`], so no waiter ever hangs.
pub(crate) struct TicketSender {
    slot: Arc<TicketSlot>,
}

impl TicketSender {
    /// Deliver the result to the waiting ticket.
    pub(crate) fn send(&self, result: Result<Response, EngineError>) {
        self.slot.fulfill(result);
    }
}

impl Drop for TicketSender {
    fn drop(&mut self) {
        // No-op if `send` already ran (fulfill is first-write-wins).
        self.slot.fulfill(Err(EngineError::Canceled));
    }
}

/// Handle to an in-flight request, backed by a condvar: `wait` parks the
/// caller until the worker publishes the response — no polling loop, no
/// channel allocation per wait.
pub struct Ticket {
    slot: Arc<TicketSlot>,
}

impl Ticket {
    fn new() -> (Ticket, TicketSender) {
        let slot = Arc::new(TicketSlot::new());
        (Ticket { slot: slot.clone() }, TicketSender { slot })
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Result<Response, EngineError> {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Ready(r) => return *r,
                SlotState::Taken => return Err(EngineError::Canceled),
                SlotState::Pending => {
                    *state = SlotState::Pending;
                    state = self
                        .slot
                        .resolved
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Block up to `timeout`. On timeout the request keeps running but
    /// its result is discarded.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response, EngineError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Ready(r) => return *r,
                SlotState::Taken => return Err(EngineError::Canceled),
                SlotState::Pending => {
                    *state = SlotState::Pending;
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(EngineError::WaitTimeout { waited: timeout });
                    }
                    let (guard, _) = self
                        .slot
                        .resolved
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                }
            }
        }
    }

    /// Park up to `timeout` waiting for the request to resolve, *without*
    /// consuming the result: `true` once a later [`Ticket::poll`] would
    /// return `Some`. This is the sweep primitive for open-loop clients
    /// and the front door — wait on the condvar for the oldest in-flight
    /// ticket instead of sleeping-and-re-polling.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match *state {
                SlotState::Ready(_) | SlotState::Taken => return true,
                SlotState::Pending => {
                    let now = Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    let (guard, _) = self
                        .slot
                        .resolved
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                }
            }
        }
    }

    /// Non-blocking poll: `Some` once the request resolved (an open-loop
    /// load client sweeps its in-flight tickets between sends), `None`
    /// while it is still queued or running.
    pub fn poll(&self) -> Option<Result<Response, EngineError>> {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        match std::mem::replace(&mut *state, SlotState::Taken) {
            SlotState::Ready(r) => Some(*r),
            SlotState::Taken => Some(Err(EngineError::Canceled)),
            SlotState::Pending => {
                *state = SlotState::Pending;
                None
            }
        }
    }
}

/// Aggregate request counters (monotonic since engine construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Requests that failed (compile, run, deadline, panic).
    pub failed: u64,
    /// Requests whose deadline expired.
    pub expired: u64,
    /// Requests that panicked in a worker (isolated, worker survived).
    pub panicked: u64,
    /// Requests served with a mapping from the tuning store.
    pub tuned_served: u64,
}

#[derive(Default)]
struct AtomicEngineStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    panicked: AtomicU64,
    tuned_served: AtomicU64,
}

/// Pre-resolved registry handles for the engine's hot-path metrics, so
/// serving a request never takes the registry's name-lookup lock.
struct EngineMetrics {
    requests_total: Arc<Counter>,
    completed_total: Arc<Counter>,
    failed_total: Arc<Counter>,
    rejected_total: Arc<Counter>,
    expired_total: Arc<Counter>,
    panicked_total: Arc<Counter>,
    tuned_served_total: Arc<Counter>,
    autotune_total: Arc<Counter>,
    request_seconds: Arc<Histogram>,
    queue_seconds: Arc<Histogram>,
    compile_seconds: Arc<Histogram>,
    run_seconds: Arc<Histogram>,
    post_mortems_dropped_total: Arc<Counter>,
    // Labelled (per-workload) families: the under-load view. The label is
    // the request's program name, so a skewed load generator can read shed
    // rate, deadline-miss rate, tail latency, and cache behaviour per
    // workload straight out of the exposition.
    requests_by_workload: Arc<CounterFamily>,
    shed_by_workload: Arc<CounterFamily>,
    expired_by_workload: Arc<CounterFamily>,
    failed_by_workload: Arc<CounterFamily>,
    request_seconds_by_workload: Arc<HistogramFamily>,
    cache_hits_by_workload: Arc<CounterFamily>,
    cache_misses_by_workload: Arc<CounterFamily>,
    // Dynamic-parallelism visibility: the simulator's global
    // `sim_child_*_total` counters can't say *which* workload launched
    // child kernels; these families can.
    child_launches_by_workload: Arc<CounterFamily>,
    child_blocks_by_workload: Arc<CounterFamily>,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> EngineMetrics {
        EngineMetrics {
            requests_total: registry
                .counter("engine_requests_total", "requests accepted into the queue"),
            completed_total: registry
                .counter("engine_completed_total", "requests served successfully"),
            failed_total: registry.counter(
                "engine_failed_total",
                "requests that failed (compile, run, deadline, panic)",
            ),
            rejected_total: registry
                .counter("engine_rejected_total", "requests rejected by backpressure"),
            expired_total: registry
                .counter("engine_expired_total", "requests whose deadline expired"),
            panicked_total: registry.counter(
                "engine_panicked_total",
                "requests that panicked in a worker (isolated)",
            ),
            tuned_served_total: registry.counter(
                "engine_tuned_served_total",
                "requests served with a mapping from the tuning store",
            ),
            autotune_total: registry.counter("engine_autotune_total", "autotune runs completed"),
            request_seconds: registry.histogram(
                "engine_request_seconds",
                "end-to-end request latency (queue wait + service)",
            ),
            queue_seconds: registry.histogram("engine_queue_seconds", "time requests spend queued"),
            compile_seconds: registry.histogram(
                "engine_compile_seconds",
                "compile time of cache-miss requests",
            ),
            run_seconds: registry.histogram("engine_run_seconds", "simulator wall-clock run time"),
            post_mortems_dropped_total: registry.counter(
                "engine_post_mortems_dropped_total",
                "post-mortem bundles evicted unread from the bounded ring",
            ),
            requests_by_workload: registry.counter_family(
                "engine_requests_by_workload",
                "requests accepted, by program",
                "workload",
            ),
            shed_by_workload: registry.counter_family(
                "engine_shed_by_workload",
                "requests shed by backpressure, by program",
                "workload",
            ),
            expired_by_workload: registry.counter_family(
                "engine_expired_by_workload",
                "requests whose deadline expired, by program",
                "workload",
            ),
            failed_by_workload: registry.counter_family(
                "engine_failed_by_workload",
                "requests that failed for any reason, by program",
                "workload",
            ),
            request_seconds_by_workload: registry.histogram_family(
                "engine_request_seconds_by_workload",
                "end-to-end request latency, by program",
                "workload",
            ),
            cache_hits_by_workload: registry.counter_family(
                "engine_cache_hits_by_workload",
                "compile-cache hits, by program",
                "workload",
            ),
            cache_misses_by_workload: registry.counter_family(
                "engine_cache_misses_by_workload",
                "compile-cache misses (cold compiles), by program",
                "workload",
            ),
            child_launches_by_workload: registry.counter_family(
                "engine_child_launches_by_workload",
                "dynamic-parallelism child kernel launches, by program",
                "workload",
            ),
            child_blocks_by_workload: registry.counter_family(
                "engine_child_blocks_by_workload",
                "dynamic-parallelism child blocks launched, by program",
                "workload",
            ),
        }
    }
}

struct Shared {
    compiler: Arc<Compiler>,
    cache: CompileCache,
    store: TuningStore,
    stats: AtomicEngineStats,
    registry: Arc<Registry>,
    metrics: EngineMetrics,
    recorder: Option<Arc<FlightRecorder>>,
    post_mortems: Mutex<VecDeque<PostMortem>>,
    /// Requests currently being served by a worker (dequeued, not yet
    /// resolved) — the overload sampler's companion to queue depth.
    in_flight: AtomicU64,
    /// Exponential moving average of per-request service time (seconds,
    /// stored as f64 bits; 0-bits = no completions yet). Feeds the
    /// `retry_after` hint on [`EngineError::Rejected`].
    ema_service_bits: AtomicU64,
}

/// EMA weight of the newest service-time sample.
const EMA_ALPHA: f64 = 0.1;

impl Shared {
    fn observe_service_time(&self, seconds: f64) {
        let old = f64::from_bits(self.ema_service_bits.load(Ordering::Relaxed));
        let next = if old > 0.0 {
            (1.0 - EMA_ALPHA) * old + EMA_ALPHA * seconds
        } else {
            seconds
        };
        self.ema_service_bits
            .store(next.to_bits(), Ordering::Relaxed);
    }

    fn ema_service_seconds(&self) -> Option<f64> {
        let v = f64::from_bits(self.ema_service_bits.load(Ordering::Relaxed));
        (v > 0.0).then_some(v)
    }
}

/// The concurrent compile/run engine. See the crate docs for the full
/// tour; in short:
///
/// * [`Engine::submit`] enqueues one request (backpressure on a full
///   queue) and returns a [`Ticket`];
/// * [`Engine::run_batch`] drives a whole batch through the queue with
///   flow control and collects every result;
/// * [`Engine::autotune`] measures mapping candidates across the worker
///   pool and persists the winner in the tuning store, after which
///   matching requests transparently use the tuned mapping.
pub struct Engine {
    shared: Arc<Shared>,
    pool: WorkerPool,
    store_load: LoadOutcome,
    default_deadline: Option<Duration>,
    queue_capacity: usize,
}

impl Engine {
    /// Build an engine around `compiler` (the compiler is shared,
    /// immutable, by every worker).
    pub fn new(compiler: Compiler, config: EngineConfig) -> Engine {
        let (store, store_load) = match &config.store_path {
            Some(path) => TuningStore::open(path),
            None => (TuningStore::in_memory(), LoadOutcome::default()),
        };
        let registry = Arc::new(Registry::new());
        let metrics = EngineMetrics::new(&registry);
        let recorder = (config.flight_recorder_capacity > 0)
            .then(|| Arc::new(FlightRecorder::new(config.flight_recorder_capacity)));
        // Install the recorder as each worker's thread-local sink: the
        // events a request emits (search spans, cache gauges, run spans)
        // land in that worker's ring, ready for a post-mortem bundle.
        let worker_sink = recorder.clone().map(|r| r as Arc<dyn Sink + Send + Sync>);
        Engine {
            shared: Arc::new(Shared {
                compiler: compiler.shared(),
                cache: CompileCache::new(config.cache_capacity),
                store,
                stats: AtomicEngineStats::default(),
                registry,
                metrics,
                recorder,
                post_mortems: Mutex::new(VecDeque::new()),
                in_flight: AtomicU64::new(0),
                ema_service_bits: AtomicU64::new(0),
            }),
            pool: WorkerPool::with_sink(config.workers, config.queue_capacity, worker_sink),
            store_load,
            default_deadline: config.default_deadline,
            queue_capacity: config.queue_capacity.max(1),
        }
    }

    /// An engine with the paper's default compiler and default sizing.
    pub fn with_defaults() -> Engine {
        Engine::new(Compiler::new(), EngineConfig::default())
    }

    /// What the tuning store found on disk at startup.
    pub fn store_load(&self) -> &LoadOutcome {
        &self.store_load
    }

    /// Enqueue one request.
    ///
    /// # Errors
    ///
    /// [`EngineError::Rejected`] when the bounded queue is full (typed
    /// backpressure — the call never blocks), [`EngineError::ShuttingDown`]
    /// when the pool is draining.
    pub fn submit(&self, request: Request) -> Result<Ticket, EngineError> {
        let mut request = request;
        // Mint a trace at the boundary when nobody upstream did — the
        // engine then owns the root span and the tail-sampling decision.
        // An upstream-minted context (the front door's) is carried through
        // untouched; its minter finishes the trace.
        let owns_trace = request.trace.is_none();
        if owns_trace && multidim_trace::store_enabled() {
            request.trace = Some(TraceContext::mint());
        }
        let trace = request.trace;
        let (ticket, sender) = Ticket::new();
        let shared = self.shared.clone();
        let deadline = request.deadline.or(self.default_deadline);
        // A spilled resubmission carries its original admission instant so
        // queue accounting charges the full wait, not the retry's slice.
        let enqueued = request.admitted_at.unwrap_or_else(Instant::now);
        let workload = request.program.name.clone();
        let job = Box::new(move || {
            process_request(&shared, request, deadline, enqueued, owns_trace, &sender);
        });
        match self.pool.try_submit(job) {
            Ok(()) => {
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.requests_total.inc();
                self.shared
                    .metrics
                    .requests_by_workload
                    .with(&workload)
                    .inc();
                Ok(ticket)
            }
            Err(Some(_full)) => {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.rejected_total.inc();
                self.shared.metrics.shed_by_workload.with(&workload).inc();
                finish_trace(trace, owns_trace, TraceOutcome::Shed, None);
                Err(self.rejection())
            }
            Err(None) => Err(EngineError::ShuttingDown),
        }
    }

    /// The typed backpressure rejection for the current overload state:
    /// observed queue depth, configured capacity, and a drain-time
    /// `retry_after` hint (queued work x average service time / workers)
    /// once at least one request has completed.
    fn rejection(&self) -> EngineError {
        let queue_depth = self.pool.queue_depth();
        let retry_after = self.shared.ema_service_seconds().map(|ema| {
            Duration::from_secs_f64(ema * (queue_depth.max(1) as f64) / self.pool.workers() as f64)
        });
        EngineError::Rejected {
            queue_depth,
            capacity: self.queue_capacity,
            retry_after,
        }
    }

    /// Drive a whole batch through the bounded queue: submit with flow
    /// control (when the queue is full, wait for the oldest in-flight
    /// request instead of spinning), and return one result per request,
    /// in request order.
    pub fn run_batch(&self, requests: Vec<Request>) -> Vec<Result<Response, EngineError>> {
        let n = requests.len();
        let mut results: Vec<Option<Result<Response, EngineError>>> =
            (0..n).map(|_| None).collect();
        let mut inflight: Vec<(usize, Ticket)> = Vec::new();
        for (i, req) in requests.into_iter().enumerate() {
            loop {
                match self.submit(req.clone()) {
                    Ok(ticket) => {
                        inflight.push((i, ticket));
                        break;
                    }
                    Err(EngineError::Rejected { .. }) if !inflight.is_empty() => {
                        // Flow control: retire the oldest in-flight
                        // request, freeing a queue slot, then retry.
                        let (j, ticket) = inflight.remove(0);
                        results[j] = Some(ticket.wait());
                    }
                    Err(EngineError::Rejected { .. }) => {
                        // Queue full with nothing of ours in flight (other
                        // submitters): back off briefly and retry.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => {
                        results[i] = Some(Err(e));
                        break;
                    }
                }
            }
        }
        for (i, ticket) in inflight {
            results[i] = Some(ticket.wait());
        }
        results
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect()
    }

    /// Tune `program`'s mapping by measuring candidates **in parallel
    /// across the worker pool**, then persist the winner so subsequent
    /// [`Engine::submit`]s of the same request transparently use it.
    ///
    /// Selection tie-breaks on candidate index (see
    /// [`multidim_mapping::select`]), so the result is identical to the
    /// serial [`Compiler::autotune`]. Candidates that cannot be enqueued
    /// (full queue) are measured inline on the calling thread — tuning
    /// degrades to partial parallelism under load rather than failing or
    /// deadlocking.
    ///
    /// # Errors
    ///
    /// [`EngineError::Compile`] when validation fails or no candidate is
    /// executable.
    pub fn autotune(
        &self,
        program: &Program,
        bindings: &Bindings,
        inputs: &HashMap<ArrayId, Vec<f64>>,
        options: &multidim_mapping::TuneOptions,
    ) -> Result<(Arc<Executable>, TuneRecord), EngineError> {
        let compiler = &self.shared.compiler;
        let prepared = Arc::new(compiler.prepare_tune(program, bindings, options)?);
        let n = prepared.plan.candidates.len();
        let bindings_shared = Arc::new(bindings.clone());
        let inputs_shared = Arc::new(inputs.clone());

        let (tx, rx) = channel::<(usize, Option<f64>)>();
        let mut pending = 0usize;
        for index in 0..n {
            let job_ctx = (
                self.shared.clone(),
                prepared.clone(),
                bindings_shared.clone(),
                inputs_shared.clone(),
                tx.clone(),
            );
            let job = Box::new(move || {
                let (shared, prepared, bindings, inputs, tx) = job_ctx;
                let mapping = &prepared.plan.candidates[index].mapping;
                let cost = catch_unwind(AssertUnwindSafe(|| {
                    shared
                        .compiler
                        .measure_candidate(&prepared, &bindings, &inputs, mapping)
                }))
                .unwrap_or(None);
                let _ = tx.send((index, cost));
            });
            match self.pool.try_submit(job) {
                Ok(()) => pending += 1,
                Err(rejected) => {
                    // Queue full or shutting down: measure inline.
                    if let Some(crate::pool::QueueFull(job)) = rejected {
                        job();
                        pending += 1;
                    } else {
                        let mapping = &prepared.plan.candidates[index].mapping;
                        let cost = compiler.measure_candidate(&prepared, bindings, inputs, mapping);
                        let _ = tx.send((index, cost));
                        pending += 1;
                    }
                }
            }
        }
        drop(tx);

        let mut costs: Vec<Option<f64>> = vec![None; n];
        for _ in 0..pending {
            match rx.recv() {
                Ok((index, cost)) => costs[index] = cost,
                Err(_) => break,
            }
        }

        // Honor `max_measurements` with serial semantics: the serial tuner
        // attempts candidates in score order and stops once that many have
        // measured successfully, so discard exactly the costs it would
        // never have observed.
        let mut successes = 0usize;
        for cost in costs.iter_mut() {
            if successes >= options.max_measurements {
                *cost = None;
            } else if cost.is_some() {
                successes += 1;
            }
        }

        let result = multidim_mapping::select(&prepared.plan, &costs).ok_or_else(|| {
            EngineError::Compile(multidim::CompileError(
                "no mapping candidate was executable".into(),
            ))
        })?;

        // The analytic winner is the plan's highest-scored candidate
        // (index 0): record its measured cost for the analytic-vs-tuned
        // delta.
        let analytic_cost = costs.first().copied().flatten();
        let record = TuneRecord {
            fingerprint: compiler.fingerprint(program, bindings),
            program: program.name.clone(),
            mapping: result.best.clone(),
            tuned_cost: result.best_cost,
            analytic_cost,
            measured: result.measured.len() as u64,
        };
        self.shared.store.insert(record.clone());
        let _ = self.shared.store.save();
        self.shared.metrics.autotune_total.inc();
        if let Some(delta) = record.analytic_delta() {
            // Positive = the measured mapping beat the analytic winner by
            // this fraction of the analytic cost.
            self.shared
                .registry
                .gauge(
                    "engine_tuned_delta",
                    "analytic-vs-tuned cost delta of the most recent autotune",
                )
                .set(delta);
        }
        if multidim_trace::enabled() {
            let mut ev = multidim_trace::Event::gauge("engine", "autotune")
                .arg("program", record.program.as_str())
                .arg("tuned_cost", record.tuned_cost)
                .arg("measured", record.measured);
            if let Some(delta) = record.analytic_delta() {
                ev = ev.arg("analytic_delta", delta);
            }
            multidim_trace::emit(ev);
        }

        let exe = Arc::new(compiler.compile_tuned(&prepared, bindings, result.best.clone())?);
        // Replace any analytically-mapped cache entry so subsequent
        // requests are served the tuned executable immediately.
        self.shared.cache.insert(record.fingerprint, exe.clone());
        Ok((exe, record))
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Request counters.
    pub fn stats(&self) -> EngineStats {
        let s = &self.shared.stats;
        EngineStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            expired: s.expired.load(Ordering::Relaxed),
            panicked: s.panicked.load(Ordering::Relaxed),
            tuned_served: s.tuned_served.load(Ordering::Relaxed),
        }
    }

    /// Current queue depth (requests waiting for a worker).
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Configured request-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The content fingerprint this engine would key `(program, bindings)`
    /// under — the address a sharded front door routes on. Identical
    /// compiler configurations (all shards of one fleet) produce identical
    /// fingerprints.
    pub fn fingerprint_of(&self, program: &Program, bindings: &Bindings) -> Fingerprint {
        self.shared.compiler.fingerprint(program, bindings)
    }

    /// `true` when a ready executable for `fp` is resident in the
    /// compilation cache (hit counters unaffected) — lets a front door
    /// tell a cold compile from a warm hit when deciding whether to
    /// coalesce onto an in-flight shard.
    pub fn cache_contains(&self, fp: Fingerprint) -> bool {
        self.shared.cache.peek(fp).is_some()
    }

    /// Exponential moving average of per-request service time, `None`
    /// until the first completion. The basis of the `retry_after` hint on
    /// [`EngineError::Rejected`] and of front-door shed-by-deadline
    /// estimates.
    pub fn estimated_service_seconds(&self) -> Option<f64> {
        self.shared.ema_service_seconds()
    }

    /// Requests currently being served by a worker (dequeued but not yet
    /// resolved). Together with [`Engine::queue_depth`] this is the
    /// overload sampler's live view of the engine.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed) as usize
    }

    /// Post-mortem bundles evicted unread because the bounded ring (cap
    /// 32) was full — nonzero means crash evidence has been lost.
    pub fn post_mortems_dropped(&self) -> u64 {
        self.shared.metrics.post_mortems_dropped_total.get()
    }

    /// Number of tuning-store records.
    pub fn store_len(&self) -> usize {
        self.shared.store.len()
    }

    /// The engine's metrics registry. Counters and histograms update as
    /// requests are served; share the arc with exporters freely.
    pub fn registry(&self) -> Arc<Registry> {
        self.shared.registry.clone()
    }

    /// Post-mortem bundles of recently failed requests, oldest first.
    /// Bounded: only the most recent 32 failures are retained. A bundle
    /// exists for every request that panicked, missed its deadline, or
    /// failed to compile or run.
    pub fn post_mortems(&self) -> Vec<PostMortem> {
        let q = self
            .shared
            .post_mortems
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        q.iter().cloned().collect()
    }

    /// Render the Prometheus-style text exposition of every engine metric,
    /// after syncing point-in-time gauges (queue depth, cache counters,
    /// store size) into the registry.
    pub fn render_metrics(&self) -> String {
        self.sync_gauges();
        self.shared.registry.render_text()
    }

    /// Snapshot point-in-time state into registry gauges.
    fn sync_gauges(&self) {
        let r = &self.shared.registry;
        r.gauge("engine_queue_depth", "requests waiting for a worker")
            .set(self.queue_depth() as f64);
        r.gauge("engine_in_flight", "requests currently being served")
            .set(self.in_flight() as f64);
        let cs = self.cache_stats();
        r.gauge("engine_cache_hits", "compile-cache hits")
            .set(cs.hits as f64);
        r.gauge("engine_cache_misses", "compile-cache misses")
            .set(cs.misses as f64);
        r.gauge(
            "engine_cache_coalesced",
            "compile-cache lookups coalesced onto an in-flight compile",
        )
        .set(cs.coalesced as f64);
        r.gauge("engine_cache_evictions", "compile-cache LRU evictions")
            .set(cs.evictions as f64);
        r.gauge("engine_cache_entries", "ready compile-cache entries")
            .set(self.shared.cache.len() as f64);
        r.gauge("engine_store_records", "tuning-store records")
            .set(self.store_len() as f64);
    }

    /// Stitch one served request into a [`RequestProfile`]: latency phases
    /// (queue → compile → run), the mapping search's score breakdown (when
    /// the *MultiDim* analysis ran), and the simulator's roofline counters.
    pub fn profile(&self, response: &Response) -> RequestProfile {
        let exe = &response.executable;
        let search = exe.analysis.as_ref().map(|a| SearchBreakdown {
            mapping: a.decision.to_string(),
            score: a.score,
            normalized_score: a.normalized_score,
            dop: a.dop,
            candidates: a.candidates as u64,
            pruned: a.pruned as u64,
        });
        RequestProfile {
            program: exe.program.name.clone(),
            fingerprint: response.fingerprint.to_string(),
            cache_hit: response.cache_hit,
            tuned: response.tuned,
            phases: PhaseBreakdown {
                queue_seconds: response.queue_wait.as_secs_f64(),
                compile_seconds: response.compile_time.as_secs_f64(),
                run_seconds: response.run_time.as_secs_f64(),
                total_seconds: (response.queue_wait + response.service_time).as_secs_f64(),
            },
            search,
            metrics: exe.metrics(&response.run).to_json(),
        }
    }

    /// Emit engine + cache counters as `multidim-trace` gauge events on
    /// the calling thread's sink.
    pub fn emit_stats(&self) {
        if multidim_trace::enabled() {
            let s = self.stats();
            multidim_trace::emit(
                multidim_trace::Event::gauge("engine", "requests")
                    .arg("submitted", s.submitted)
                    .arg("completed", s.completed)
                    .arg("rejected", s.rejected)
                    .arg("failed", s.failed)
                    .arg("expired", s.expired)
                    .arg("panicked", s.panicked)
                    .arg("tuned_served", s.tuned_served)
                    .arg("queue_depth", self.queue_depth()),
            );
        }
        self.shared.cache.emit_trace();
    }

    /// Persist the tuning store now (also happens on shutdown/drop).
    ///
    /// # Errors
    ///
    /// Propagates the underlying IO failure.
    pub fn flush(&self) -> Result<(), std::io::Error> {
        self.shared.store.save()
    }

    /// Drain the queue, join the workers, and persist the tuning store.
    /// Also performed on drop.
    pub fn shutdown(mut self) {
        self.pool.shutdown();
        let _ = self.shared.store.save();
    }
}

/// How far `serve` got before returning or unwinding: filled in as the
/// phases progress so a failure can report partial timings and the request
/// fingerprint even when it never produced a [`Response`].
#[derive(Default)]
struct ServePhases {
    fingerprint: Option<Fingerprint>,
    cache_hit: Option<bool>,
    compile_started: Option<Instant>,
    compile: Option<Duration>,
    run_started: Option<Instant>,
    run: Option<Duration>,
}

impl ServePhases {
    /// Completed-phase duration, or time spent in the phase so far when
    /// the failure interrupted it mid-flight.
    fn phase_seconds(done: Option<Duration>, started: Option<Instant>) -> Option<f64> {
        done.map(|d| d.as_secs_f64())
            .or_else(|| started.map(|t| t.elapsed().as_secs_f64()))
    }

    fn compile_seconds(&self) -> Option<f64> {
        Self::phase_seconds(self.compile, self.compile_started)
    }

    fn run_seconds(&self) -> Option<f64> {
        Self::phase_seconds(self.run, self.run_started)
    }
}

/// Build a post-mortem bundle on the failing worker thread (so the flight
/// recorder's `recent()` reads this worker's ring) and retain it in the
/// engine's bounded queue.
fn record_failure(
    shared: &Shared,
    request: &Request,
    reason: String,
    queue_wait: Duration,
    phases: &ServePhases,
) {
    let diagnostics = phases
        .fingerprint
        .and_then(|fp| shared.cache.peek(fp))
        .map(|exe| {
            exe.diagnostics
                .diagnostics
                .iter()
                .map(|d| d.render_line())
                .collect()
        })
        .unwrap_or_default();
    let events = shared
        .recorder
        .as_ref()
        .map(|r| r.recent())
        .unwrap_or_default();
    let pm = PostMortem {
        program: request.program.name.clone(),
        fingerprint: phases.fingerprint.map(|fp| fp.to_string()),
        reason,
        queue_seconds: queue_wait.as_secs_f64(),
        compile_seconds: phases.compile_seconds(),
        run_seconds: phases.run_seconds(),
        diagnostics,
        events,
    };
    let mut q = shared
        .post_mortems
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if q.len() == POST_MORTEM_CAP {
        // Evicting an unread bundle silently loses crash evidence; count
        // it so the exposition shows the loss.
        q.pop_front();
        shared.metrics.post_mortems_dropped_total.inc();
    }
    q.push_back(pm);
}

/// Decrements the in-flight gauge on every exit path (including the
/// early deadline return and a propagating panic).
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Finish a trace in the installed store if this tier minted it; the
/// context's minter owns the sampling decision. Returns the kept trace id
/// when the sampler retained the trace.
fn finish_trace(
    trace: Option<TraceContext>,
    owns: bool,
    outcome: TraceOutcome,
    latency_seconds: Option<f64>,
) -> Option<u128> {
    if !owns {
        return None;
    }
    let ctx = trace.filter(|c| c.sampled)?;
    let store = multidim_trace::store()?;
    store
        .finish(&ctx, outcome, latency_seconds)
        .then_some(ctx.trace_id)
}

/// Record one already-elapsed child span of `ctx` (queue waits and other
/// phases reconstructed after the fact, where a live [`RequestSpan`]
/// guard can't wrap the work).
fn record_child_span(
    ctx: &TraceContext,
    cat: &'static str,
    name: &'static str,
    start: Instant,
    dur: Duration,
    args: Vec<(&'static str, multidim_trace::Value)>,
) {
    if !ctx.sampled {
        return;
    }
    if let Some(store) = multidim_trace::store() {
        let child = ctx.child();
        store.record(
            ctx,
            SpanRecord {
                span_id: child.span_id,
                parent: Some(ctx.span_id),
                cat,
                name,
                start_us: instant_us(start),
                dur_us: dur.as_secs_f64() * 1e6,
                args,
            },
        );
    }
}

fn process_request(
    shared: &Shared,
    request: Request,
    deadline: Option<Duration>,
    enqueued: Instant,
    owns_trace: bool,
    sender: &TicketSender,
) {
    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    let _in_flight = InFlightGuard(&shared.in_flight);
    // Make the request's context current on this worker thread so every
    // span recorded below (and inside `serve`) stitches into one trace
    // even though admission happened on a different thread.
    let trace = request.trace;
    let _ctx_guard = trace.map(multidim_trace::set_current);
    let workload = request.program.name.clone();
    let queue_wait = enqueued.elapsed();
    shared
        .metrics
        .queue_seconds
        .record(queue_wait.as_secs_f64());
    if let Some(ctx) = &trace {
        record_child_span(ctx, "engine", "queue", enqueued, queue_wait, Vec::new());
    }
    // Deadline check #1: the request may have expired while queued.
    if let Some(d) = deadline {
        if queue_wait > d {
            shared.stats.expired.fetch_add(1, Ordering::Relaxed);
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.expired_total.inc();
            shared.metrics.failed_total.inc();
            shared.metrics.expired_by_workload.with(&workload).inc();
            shared.metrics.failed_by_workload.with(&workload).inc();
            let err = EngineError::DeadlineExceeded { waited: queue_wait };
            // The request never reached `serve`, so compute the
            // fingerprint here purely for the bundle (guarded: a hostile
            // binding can make fingerprinting itself panic).
            let phases = ServePhases {
                fingerprint: catch_unwind(AssertUnwindSafe(|| {
                    shared
                        .compiler
                        .fingerprint(&request.program, &request.bindings)
                }))
                .ok(),
                ..ServePhases::default()
            };
            record_failure(shared, &request, err.to_string(), queue_wait, &phases);
            record_root_span(trace, owns_trace, &workload, enqueued, "expired");
            finish_trace(
                trace,
                owns_trace,
                TraceOutcome::Expired,
                Some(queue_wait.as_secs_f64()),
            );
            sender.send(Err(err));
            return;
        }
    }
    let started = Instant::now();
    let mut phases = ServePhases::default();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        serve(shared, &request, deadline, enqueued, &mut phases)
    }));
    let result = match outcome {
        Ok(r) => r,
        Err(payload) => {
            shared.stats.panicked.fetch_add(1, Ordering::Relaxed);
            shared.metrics.panicked_total.inc();
            Err(EngineError::WorkerPanic(panic_message(payload.as_ref())))
        }
    };
    let result = result.map(|(fingerprint, executable, run, cache_hit, tuned)| {
        if tuned {
            shared.stats.tuned_served.fetch_add(1, Ordering::Relaxed);
            shared.metrics.tuned_served_total.inc();
        }
        Response {
            fingerprint,
            executable,
            run,
            cache_hit,
            tuned,
            queue_wait,
            service_time: started.elapsed(),
            compile_time: phases.compile.unwrap_or_default(),
            run_time: phases.run.unwrap_or_default(),
            trace,
        }
    });
    // Stitch the trace before touching the histograms: the root span must
    // land before `finish` seals the trace, and the sampler's keep/drop
    // verdict decides whether the latency sample carries an exemplar.
    let (trace_outcome, trace_latency) = match &result {
        Ok(resp) => (
            TraceOutcome::Completed,
            Some((resp.queue_wait + resp.service_time).as_secs_f64()),
        ),
        Err(EngineError::DeadlineExceeded { .. }) => (
            TraceOutcome::Expired,
            Some(enqueued.elapsed().as_secs_f64()),
        ),
        Err(_) => (TraceOutcome::Failed, None),
    };
    record_root_span(
        trace,
        owns_trace,
        &workload,
        enqueued,
        trace_outcome.as_str(),
    );
    let kept_trace = finish_trace(trace, owns_trace, trace_outcome, trace_latency);
    match &result {
        Ok(resp) => {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.completed_total.inc();
            let latency = (resp.queue_wait + resp.service_time).as_secs_f64();
            // Kept traces become exemplars: the p99 bucket of the latency
            // histogram then links to a trace the store can actually
            // resolve (dropped traces never publish their ids).
            match kept_trace {
                Some(id) => {
                    shared
                        .metrics
                        .request_seconds
                        .record_with_exemplar(latency, id);
                    shared
                        .metrics
                        .request_seconds_by_workload
                        .with(&workload)
                        .record_with_exemplar(latency, id);
                }
                None => {
                    shared.metrics.request_seconds.record(latency);
                    shared
                        .metrics
                        .request_seconds_by_workload
                        .with(&workload)
                        .record(latency);
                }
            }
            shared
                .metrics
                .run_seconds
                .record(resp.run_time.as_secs_f64());
            if resp.cache_hit {
                shared.metrics.cache_hits_by_workload.with(&workload).inc();
            } else {
                shared
                    .metrics
                    .cache_misses_by_workload
                    .with(&workload)
                    .inc();
                shared
                    .metrics
                    .compile_seconds
                    .record(resp.compile_time.as_secs_f64());
            }
            // Fold the simulator's roofline counters into the registry.
            let run_metrics = resp.executable.metrics(&resp.run);
            run_metrics.record(&shared.registry);
            let (child_launches, child_blocks) = run_metrics.child_totals();
            if child_launches > 0 {
                shared
                    .metrics
                    .child_launches_by_workload
                    .with(&workload)
                    .add(child_launches);
                shared
                    .metrics
                    .child_blocks_by_workload
                    .with(&workload)
                    .add(child_blocks);
            }
            shared.observe_service_time(resp.service_time.as_secs_f64());
        }
        Err(err) => {
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.failed_total.inc();
            shared.metrics.failed_by_workload.with(&workload).inc();
            if matches!(err, EngineError::DeadlineExceeded { .. }) {
                shared.stats.expired.fetch_add(1, Ordering::Relaxed);
                shared.metrics.expired_total.inc();
                shared.metrics.expired_by_workload.with(&workload).inc();
            }
            record_failure(shared, &request, err.to_string(), queue_wait, &phases);
        }
    }
    sender.send(result);
}

/// Record the root "request" span when this tier minted the context (an
/// upstream front door records its own root covering admission→outcome).
fn record_root_span(
    trace: Option<TraceContext>,
    owns: bool,
    workload: &str,
    enqueued: Instant,
    outcome: &'static str,
) {
    if !owns {
        return;
    }
    let Some(ctx) = trace.filter(|c| c.sampled) else {
        return;
    };
    if let Some(store) = multidim_trace::store() {
        store.record(
            &ctx,
            SpanRecord {
                span_id: ctx.span_id,
                parent: None,
                cat: "engine",
                name: "request",
                start_us: instant_us(enqueued),
                dur_us: enqueued.elapsed().as_secs_f64() * 1e6,
                args: vec![
                    ("workload", workload.to_string().into()),
                    ("outcome", outcome.into()),
                ],
            },
        );
    }
}

type Served = (Fingerprint, Arc<Executable>, RunReport, bool, bool);

fn serve(
    shared: &Shared,
    request: &Request,
    deadline: Option<Duration>,
    enqueued: Instant,
    phases: &mut ServePhases,
) -> Result<Served, EngineError> {
    let fp = shared
        .compiler
        .fingerprint(&request.program, &request.bindings);
    phases.fingerprint = Some(fp);
    let tuned_record = shared.store.get(fp);
    let tuned = tuned_record.is_some();
    let mut cache_hit = true;
    phases.compile_started = Some(Instant::now());
    // A live guard wraps the phase: if compilation errors out (`?`), the
    // drop still records the span with the time spent so far.
    let mut compile_span = multidim_trace::request_span("engine", "compile");
    let exe = shared.cache.get_or_compile(fp, || {
        cache_hit = false;
        match &tuned_record {
            // Prefer the empirically best mapping from the store; fall
            // back to the analytic pipeline if it no longer lowers.
            Some(rec) => shared
                .compiler
                .compile_with_mapping(&request.program, &request.bindings, rec.mapping.clone())
                .or_else(|_| shared.compiler.compile(&request.program, &request.bindings)),
            None => shared.compiler.compile(&request.program, &request.bindings),
        }
    })?;
    if let Some(span) = compile_span.as_mut() {
        span.arg("cache_hit", cache_hit);
        span.arg("tuned", tuned);
    }
    drop(compile_span);
    phases.compile = phases.compile_started.map(|t| t.elapsed());
    phases.cache_hit = Some(cache_hit);
    if !cache_hit {
        if let Some(analysis) = &exe.analysis {
            multidim_mapping::observe_analysis(&shared.registry, analysis);
        }
        // Expose lint pressure: one labelled counter per diagnostic code
        // (MD001..MD015) emitted for freshly compiled programs, so load
        // runs surface how many served programs carry static findings.
        let family = shared.registry.counter_family(
            "analyze_diagnostics_total",
            "static-analysis diagnostics emitted at compile time, by MD code",
            "code",
        );
        for d in &exe.diagnostics.diagnostics {
            family.with(&d.code.to_string()).inc();
        }
    }
    // Deadline check #2: compiling may have eaten the budget.
    if let Some(d) = deadline {
        let waited = enqueued.elapsed();
        if waited > d {
            return Err(EngineError::DeadlineExceeded { waited });
        }
    }
    phases.run_started = Some(Instant::now());
    let run_span = multidim_trace::request_span("engine", "run");
    let run = exe.run(&request.inputs)?;
    drop(run_span);
    phases.run = phases.run_started.map(|t| t.elapsed());
    Ok((fp, exe, run, cache_hit, tuned))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
