//! Persistent store for empirically tuned mappings.
//!
//! `mapping::tune` measurements are expensive (one simulation per
//! candidate); throwing them away on process exit means every restart
//! re-pays the whole search. This store keeps the winners: versioned JSON
//! on disk (through the hand-rolled `multidim_trace::json` model — the
//! container ships no serde), keyed by the same content
//! [`Fingerprint`] the compilation cache uses, so an entry written by one
//! process matches the identical request in the next.
//!
//! Robustness rule: a corrupt, truncated, or version-mismatched store file
//! must never take the service down — and must not be silently deleted
//! either. [`TuningStore::open`] *quarantines* such a file (renames it to
//! `<path>.quarantined.<nonce>`) and starts empty; the engine then falls
//! back to analytic mappings exactly as on first boot.

use multidim::Fingerprint;
use multidim_mapping::{Dim, LevelMapping, MappingDecision, Span};
use multidim_trace::json::Json;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// On-disk format version; bump on any incompatible change. A file with a
/// different version is quarantined wholesale (entries are not migrated).
pub const STORE_VERSION: u64 = 1;

/// One persisted tuning outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneRecord {
    /// Content address of the (program, bindings, device, compiler
    /// config) this mapping was tuned for.
    pub fingerprint: Fingerprint,
    /// Program name, for humans reading the file.
    pub program: String,
    /// The empirically best mapping.
    pub mapping: MappingDecision,
    /// Its measured cost (simulated seconds).
    pub tuned_cost: f64,
    /// Measured cost of the *analytic* (static-score) winner, when it was
    /// among the measured candidates — the analytic-vs-tuned delta is
    /// `analytic_cost / tuned_cost`.
    pub analytic_cost: Option<f64>,
    /// How many candidates were measured to find this.
    pub measured: u64,
}

impl TuneRecord {
    /// `analytic_cost / tuned_cost` — how much faster the tuned mapping is
    /// than the analytic one (1.0 = tie, >1 = tuning won).
    pub fn analytic_delta(&self) -> Option<f64> {
        self.analytic_cost.map(|a| a / self.tuned_cost.max(1e-300))
    }
}

/// What [`TuningStore::open`] found on disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadOutcome {
    /// Entries successfully loaded.
    pub loaded: usize,
    /// Where the previous file went if it was corrupt or
    /// version-mismatched.
    pub quarantined: Option<PathBuf>,
}

/// The store. Thread-safe; the engine shares one across its workers.
pub struct TuningStore {
    path: Option<PathBuf>,
    entries: Mutex<HashMap<Fingerprint, TuneRecord>>,
    dirty: AtomicBool,
}

impl TuningStore {
    /// A store that never touches disk (caching within one process only).
    pub fn in_memory() -> TuningStore {
        TuningStore {
            path: None,
            entries: Mutex::new(HashMap::new()),
            dirty: AtomicBool::new(false),
        }
    }

    /// Open (or create) the store at `path`. Never fails: a missing file
    /// means an empty store, and an unreadable/corrupt/version-mismatched
    /// file is quarantined — see the module docs.
    pub fn open(path: impl Into<PathBuf>) -> (TuningStore, LoadOutcome) {
        let path = path.into();
        let mut outcome = LoadOutcome::default();
        let mut entries = HashMap::new();
        match std::fs::read_to_string(&path) {
            Err(_) => {} // missing or unreadable: start empty
            Ok(text) => match parse_store(&text) {
                Ok(parsed) => {
                    outcome.loaded = parsed.len();
                    entries = parsed;
                }
                Err(reason) => {
                    outcome.quarantined = quarantine(&path, &reason);
                }
            },
        }
        let store = TuningStore {
            path: Some(path),
            entries: Mutex::new(entries),
            dirty: AtomicBool::new(false),
        };
        (store, outcome)
    }

    /// The tuned record for `fp`, if any.
    pub fn get(&self, fp: Fingerprint) -> Option<TuneRecord> {
        self.entries.lock().unwrap().get(&fp).cloned()
    }

    /// Insert or replace a record; marks the store dirty.
    pub fn insert(&self, record: TuneRecord) {
        self.entries
            .lock()
            .unwrap()
            .insert(record.fingerprint, record);
        self.dirty.store(true, Ordering::Release);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// `true` when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write the store to disk if it has a path and unsaved changes.
    /// Atomic: renders to `<path>.tmp`, then renames over the target, so
    /// a crash mid-write can never truncate the live file.
    ///
    /// Saving **merges per record** with whatever is on disk: several
    /// store instances may share one file (the serving tier points every
    /// shard's engine at the same warm-tier path), and a whole-file
    /// overwrite would silently drop records a sibling saved since this
    /// instance loaded. On a fingerprint collision this instance's
    /// record wins; an unparseable on-disk file contributes nothing here
    /// (quarantine stays [`TuningStore::open`]'s job).
    ///
    /// # Errors
    ///
    /// Propagates the underlying IO failure; the in-memory state is
    /// unaffected (the store stays dirty-free only on success).
    pub fn save(&self) -> Result<(), std::io::Error> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if !self.dirty.swap(false, Ordering::AcqRel) {
            return Ok(());
        }
        let body = {
            let entries = self.entries.lock().unwrap();
            let mut merged = std::fs::read_to_string(path)
                .ok()
                .and_then(|text| parse_store(&text).ok())
                .unwrap_or_default();
            for (fp, record) in entries.iter() {
                merged.insert(*fp, record.clone());
            }
            render_store(&merged)
        };
        let tmp = path.with_extension("tmp");
        let result = std::fs::write(&tmp, body).and_then(|()| std::fs::rename(&tmp, path));
        if result.is_err() {
            // Keep the unsaved changes eligible for the next save attempt.
            self.dirty.store(true, Ordering::Release);
        }
        result
    }
}

impl Drop for TuningStore {
    fn drop(&mut self) {
        let _ = self.save();
    }
}

fn quarantine(path: &Path, reason: &str) -> Option<PathBuf> {
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let target = path.with_extension(format!("quarantined.{nonce}"));
    match std::fs::rename(path, &target) {
        Ok(()) => {
            eprintln!(
                "multidim-engine: quarantined tuning store {} -> {} ({reason})",
                path.display(),
                target.display()
            );
            Some(target)
        }
        Err(_) => None,
    }
}

// --- JSON codec -----------------------------------------------------------

fn span_json(span: Span) -> Json {
    match span {
        Span::Span(n) => Json::Obj(vec![
            ("kind".into(), Json::Str("span".into())),
            ("n".into(), Json::Num(n as f64)),
        ]),
        Span::All => Json::Obj(vec![("kind".into(), Json::Str("all".into()))]),
        Span::Split(k) => Json::Obj(vec![
            ("kind".into(), Json::Str("split".into())),
            ("k".into(), Json::Num(k as f64)),
        ]),
    }
}

fn span_from_json(j: &Json) -> Result<Span, String> {
    match j.get("kind").and_then(Json::as_str) {
        Some("span") => Ok(Span::Span(
            j.get("n").and_then(Json::as_f64).ok_or("span without n")? as i64,
        )),
        Some("all") => Ok(Span::All),
        Some("split") => Ok(Span::Split(
            j.get("k").and_then(Json::as_f64).ok_or("split without k")? as i64,
        )),
        _ => Err("unknown span kind".into()),
    }
}

/// Render one mapping as JSON (levels outermost first).
pub fn mapping_json(mapping: &MappingDecision) -> Json {
    Json::Arr(
        mapping
            .levels()
            .iter()
            .map(|l| {
                Json::Obj(vec![
                    ("dim".into(), Json::Num(l.dim.0 as f64)),
                    ("block".into(), Json::Num(l.block_size as f64)),
                    ("span".into(), span_json(l.span)),
                ])
            })
            .collect(),
    )
}

/// Parse a mapping rendered by [`mapping_json`].
pub fn mapping_from_json(j: &Json) -> Result<MappingDecision, String> {
    let arr = j.as_arr().ok_or("mapping is not an array")?;
    if arr.is_empty() {
        return Err("mapping has no levels".into());
    }
    let levels = arr
        .iter()
        .map(|l| {
            Ok(LevelMapping {
                dim: Dim(l
                    .get("dim")
                    .and_then(Json::as_u64)
                    .ok_or("level without dim")? as u8),
                block_size: l
                    .get("block")
                    .and_then(Json::as_u64)
                    .ok_or("level without block")? as u32,
                span: span_from_json(l.get("span").ok_or("level without span")?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(MappingDecision::new(levels))
}

fn record_json(r: &TuneRecord) -> Json {
    let mut fields = vec![
        ("fingerprint".into(), Json::Str(r.fingerprint.to_string())),
        ("program".into(), Json::Str(r.program.clone())),
        ("mapping".into(), mapping_json(&r.mapping)),
        ("tuned_cost".into(), Json::Num(r.tuned_cost)),
        ("measured".into(), Json::Num(r.measured as f64)),
    ];
    if let Some(a) = r.analytic_cost {
        fields.push(("analytic_cost".into(), Json::Num(a)));
    }
    Json::Obj(fields)
}

fn record_from_json(j: &Json) -> Result<TuneRecord, String> {
    let fp = j
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(Fingerprint::parse)
        .ok_or("bad fingerprint")?;
    Ok(TuneRecord {
        fingerprint: fp,
        program: j
            .get("program")
            .and_then(Json::as_str)
            .ok_or("missing program")?
            .to_string(),
        mapping: mapping_from_json(j.get("mapping").ok_or("missing mapping")?)?,
        tuned_cost: j
            .get("tuned_cost")
            .and_then(Json::as_f64)
            .ok_or("missing tuned_cost")?,
        analytic_cost: j.get("analytic_cost").and_then(Json::as_f64),
        measured: j.get("measured").and_then(Json::as_u64).unwrap_or(0),
    })
}

fn render_store(entries: &HashMap<Fingerprint, TuneRecord>) -> String {
    let mut records: Vec<&TuneRecord> = entries.values().collect();
    records.sort_by_key(|r| r.fingerprint);
    Json::Obj(vec![
        ("version".into(), Json::Num(STORE_VERSION as f64)),
        (
            "entries".into(),
            Json::Arr(records.into_iter().map(record_json).collect()),
        ),
    ])
    .render()
}

fn parse_store(text: &str) -> Result<HashMap<Fingerprint, TuneRecord>, String> {
    let j = Json::parse(text)?;
    let version = j
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing version")?;
    if version != STORE_VERSION {
        return Err(format!(
            "version mismatch: file is v{version}, this build reads v{STORE_VERSION}"
        ));
    }
    let mut out = HashMap::new();
    for entry in j
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing entries")?
    {
        let r = record_from_json(entry)?;
        out.insert(r.fingerprint, r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidim_mapping::{Dim, LevelMapping, Span};

    fn record(tag: u64) -> TuneRecord {
        TuneRecord {
            fingerprint: Fingerprint([tag, tag ^ 0xffff]),
            program: format!("p{tag}"),
            mapping: MappingDecision::new(vec![
                LevelMapping {
                    dim: Dim::Y,
                    block_size: 8,
                    span: Span::Span(2),
                },
                LevelMapping {
                    dim: Dim::X,
                    block_size: 32,
                    span: Span::Split(3),
                },
            ]),
            tuned_cost: 1.5e-3,
            analytic_cost: Some(2.0e-3),
            measured: 40,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("multidim-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp("roundtrip");
        {
            let (store, out) = TuningStore::open(&path);
            assert_eq!(out, LoadOutcome::default());
            store.insert(record(1));
            store.insert(record(2));
            store.save().unwrap();
        }
        let (store, out) = TuningStore::open(&path);
        assert_eq!(out.loaded, 2);
        assert!(out.quarantined.is_none());
        assert_eq!(store.get(record(1).fingerprint), Some(record(1)));
        assert_eq!(store.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_merges_with_sibling_instances_sharing_the_file() {
        // Two instances on one path — the serving tier's shared warm
        // tier. Each tunes a different program; neither save may drop
        // the other's record.
        let path = tmp("merge");
        let (a, _) = TuningStore::open(&path);
        let (b, _) = TuningStore::open(&path);
        a.insert(record(1));
        a.save().unwrap();
        b.insert(record(2));
        b.save().unwrap();

        let (merged, out) = TuningStore::open(&path);
        assert_eq!(out.loaded, 2, "a sibling's save dropped a record");
        assert_eq!(merged.get(record(1).fingerprint), Some(record(1)));
        assert_eq!(merged.get(record(2).fingerprint), Some(record(2)));

        // On a fingerprint collision the saving instance wins.
        let mut newer = record(1);
        newer.tuned_cost = 9.9e-3;
        b.insert(newer.clone());
        b.save().unwrap();
        let (merged, _) = TuningStore::open(&path);
        assert_eq!(merged.get(newer.fingerprint), Some(newer));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analytic_delta() {
        assert_eq!(record(1).analytic_delta(), Some(2.0e-3 / 1.5e-3));
        let mut r = record(1);
        r.analytic_cost = None;
        assert_eq!(r.analytic_delta(), None);
    }

    #[test]
    fn truncated_file_is_quarantined_not_fatal() {
        let path = tmp("truncated");
        {
            let (store, _) = TuningStore::open(&path);
            store.insert(record(1));
            store.save().unwrap();
        }
        // Truncate mid-entry.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();

        let (store, out) = TuningStore::open(&path);
        assert_eq!(out.loaded, 0);
        let q = out.quarantined.expect("must quarantine");
        assert!(q.exists(), "the bad file is preserved for inspection");
        assert!(store.is_empty(), "engine falls back to analytic mapping");
        assert!(!path.exists(), "the bad file no longer shadows the store");
        let _ = std::fs::remove_file(&q);
    }

    #[test]
    fn version_mismatch_is_quarantined() {
        let path = tmp("version");
        std::fs::write(&path, "{\"version\":999,\"entries\":[]}").unwrap();
        let (store, out) = TuningStore::open(&path);
        assert!(out.quarantined.is_some());
        assert!(store.is_empty());
        let _ = std::fs::remove_file(out.quarantined.unwrap());
    }

    #[test]
    fn garbage_is_quarantined() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all {{{").unwrap();
        let (_, out) = TuningStore::open(&path);
        assert!(out.quarantined.is_some());
        let _ = std::fs::remove_file(out.quarantined.unwrap());
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let path = tmp("missing");
        let (store, out) = TuningStore::open(&path);
        assert_eq!(out, LoadOutcome::default());
        assert!(store.is_empty());
    }

    #[test]
    fn save_is_a_noop_when_clean() {
        let (store, _) = TuningStore::open(tmp("clean"));
        store.save().unwrap();
        assert!(!store.path.as_ref().unwrap().exists(), "nothing to write");
    }

    #[test]
    fn mapping_codec_round_trips_all_span_kinds() {
        for span in [Span::Span(4), Span::All, Span::Split(7)] {
            let m = MappingDecision::new(vec![LevelMapping {
                dim: Dim::Z,
                block_size: 16,
                span,
            }]);
            let j = mapping_json(&m);
            assert_eq!(mapping_from_json(&j).unwrap(), m);
        }
        assert!(mapping_from_json(&Json::Arr(vec![])).is_err());
        assert!(mapping_from_json(&Json::Null).is_err());
    }
}
