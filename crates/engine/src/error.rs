//! Typed failures of the service layer.

use multidim::{CompileError, RunError};
use std::fmt;
use std::time::Duration;

/// Why the engine could not serve a request.
///
/// Every variant implements [`std::error::Error`]; pipeline failures keep
/// their typed cause ([`CompileError`] / [`RunError`]) reachable through
/// `source()`.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The bounded request queue was full — backpressure, not blocking.
    /// Carries enough context for the caller to make a spill-or-retry
    /// decision: the observed depth, the configured capacity, and a
    /// drain-time estimate.
    Rejected {
        /// Queue depth when the request was rejected.
        queue_depth: usize,
        /// Configured queue capacity (depth ≈ capacity at rejection).
        capacity: usize,
        /// Estimated time until the queue drains (queued work × average
        /// service time ÷ workers); `None` before the first completion.
        /// A caller holding a deadline shorter than this should spill to
        /// another shard or shed instead of retrying here.
        retry_after: Option<Duration>,
    },
    /// The engine is draining and no longer accepts work.
    ShuttingDown,
    /// The request's deadline elapsed before a worker could finish it
    /// (checked when the request is dequeued and between the compile and
    /// run phases).
    DeadlineExceeded {
        /// How long the request had been waiting when the deadline check
        /// fired.
        waited: Duration,
    },
    /// The caller-side wait timed out; the request may still complete in
    /// the background but its result is discarded.
    WaitTimeout {
        /// How long the caller waited.
        waited: Duration,
    },
    /// Compilation failed.
    Compile(CompileError),
    /// Execution failed.
    Run(RunError),
    /// The request panicked inside a worker. The worker survives and the
    /// panic is isolated to this response.
    WorkerPanic(String),
    /// The worker processing this request disappeared before responding
    /// (pool shut down mid-request).
    Canceled,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Rejected {
                queue_depth,
                capacity,
                retry_after,
            } => {
                write!(
                    f,
                    "request rejected: queue full (depth {queue_depth}/{capacity}"
                )?;
                if let Some(d) = retry_after {
                    write!(f, ", retry in ~{:.1} ms", d.as_secs_f64() * 1e3)?;
                }
                write!(f, ")")
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::DeadlineExceeded { waited } => {
                write!(
                    f,
                    "deadline exceeded after {:.1} ms",
                    waited.as_secs_f64() * 1e3
                )
            }
            EngineError::WaitTimeout { waited } => {
                write!(
                    f,
                    "wait timed out after {:.1} ms",
                    waited.as_secs_f64() * 1e3
                )
            }
            EngineError::Compile(e) => write!(f, "{e}"),
            EngineError::Run(e) => write!(f, "{e}"),
            EngineError::WorkerPanic(msg) => write!(f, "request panicked in worker: {msg}"),
            EngineError::Canceled => write!(f, "request canceled: worker disappeared"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Compile(e) => Some(e),
            EngineError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> EngineError {
        EngineError::Compile(e)
    }
}

impl From<RunError> for EngineError {
    fn from(e: RunError) -> EngineError {
        EngineError::Run(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn sources_are_reachable() {
        let e = EngineError::from(CompileError("bad".into()));
        assert!(e.source().unwrap().to_string().contains("bad"));
        let e = EngineError::from(RunError("boom".into()));
        assert!(e.source().unwrap().to_string().contains("boom"));
        assert!(EngineError::Canceled.source().is_none());
    }

    #[test]
    fn displays_are_informative() {
        let rejected = EngineError::Rejected {
            queue_depth: 9,
            capacity: 16,
            retry_after: Some(Duration::from_millis(12)),
        };
        let text = rejected.to_string();
        assert!(text.contains("depth 9/16"), "{text}");
        assert!(text.contains("retry in ~12.0 ms"), "{text}");
        let bare = EngineError::Rejected {
            queue_depth: 9,
            capacity: 16,
            retry_after: None,
        };
        assert!(!bare.to_string().contains("retry"), "{bare}");
        assert!(EngineError::DeadlineExceeded {
            waited: Duration::from_millis(5)
        }
        .to_string()
        .contains("deadline"));
        assert!(EngineError::WorkerPanic("x".into())
            .to_string()
            .contains("x"));
    }
}
