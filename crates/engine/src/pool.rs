//! A bounded worker pool on std threads and channels.
//!
//! Design constraints, in order:
//!
//! * **backpressure, not blocking** — [`WorkerPool::try_submit`] returns a
//!   typed rejection when the queue is full; it never parks the caller;
//! * **panic isolation** — a panicking job is caught with
//!   [`std::panic::catch_unwind`]; the worker thread survives and keeps
//!   serving;
//! * **graceful drain** — dropping (or [`WorkerPool::shutdown`]) closes
//!   the submission side; workers finish everything already queued, then
//!   exit, and the pool joins them.
//!
//! Jobs are plain `FnOnce() + Send` closures: the engine uses them for
//! whole requests, and the parallel auto-tuner for individual candidate
//! measurements.
//!
//! Trace events emitted inside a job go to the *worker thread's* sink, not
//! the submitter's — `multidim-trace` sinks are thread-local. A pool built
//! with [`WorkerPool::with_sink`] installs a shared `Send + Sync` sink on
//! every worker at spawn time (the engine uses this for its flight
//! recorder), so worker-side events are captured instead of vanishing.

use multidim_trace::Sink;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// A job for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool. Submission is `&self`; share behind an [`Arc`] or keep it
/// inside the engine.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    depth: Arc<AtomicUsize>,
    panics: Arc<AtomicU64>,
}

/// Returned by [`WorkerPool::try_submit`] when the queue is full; gives
/// the job back so the caller can retry, shed, or run it inline.
pub struct QueueFull(pub Job);

impl std::fmt::Debug for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueueFull(..)")
    }
}

impl WorkerPool {
    /// Spawn `workers` threads behind a queue of `queue_capacity` slots
    /// (both forced to at least 1).
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        WorkerPool::with_sink(workers, queue_capacity, None)
    }

    /// [`WorkerPool::new`] plus a trace sink installed thread-locally on
    /// every worker for the thread's lifetime: events emitted by jobs are
    /// delivered to `sink` instead of being dropped.
    pub fn with_sink(
        workers: usize,
        queue_capacity: usize,
        sink: Option<Arc<dyn Sink + Send + Sync>>,
    ) -> WorkerPool {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let depth = Arc::new(AtomicUsize::new(0));
        let panics = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let depth = depth.clone();
                let panics = panics.clone();
                let sink = sink.clone();
                std::thread::Builder::new()
                    .name(format!("multidim-engine-worker-{i}"))
                    .spawn(move || {
                        // The blanket `Sink for Arc<S>` impl lets the shared
                        // sink double as this thread's local sink.
                        let _guard = sink.map(|s| {
                            multidim_trace::set_sink(std::rc::Rc::new(s) as std::rc::Rc<dyn Sink>)
                        });
                        worker_loop(&rx, &depth, &panics);
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers: handles,
            depth,
            panics,
        }
    }

    /// Enqueue a job, or hand it back if the queue is full (backpressure)
    /// or the pool is shutting down (`None`).
    pub fn try_submit(&self, job: Job) -> Result<(), Option<QueueFull>> {
        let Some(tx) = &self.tx else {
            return Err(None);
        };
        // Count before sending so a worker that dequeues immediately never
        // observes an underflowed depth.
        self.depth.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                Err(Some(QueueFull(job)))
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                Err(None)
            }
        }
    }

    /// Jobs currently queued (excluding ones being executed).
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs that panicked (and were contained).
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Stop accepting work, let the workers drain the queue, and join
    /// them. Also performed on drop.
    pub fn shutdown(&mut self) {
        self.tx = None; // close the channel: workers exit once drained
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, depth: &AtomicUsize, panics: &AtomicU64) {
    loop {
        // Hold the lock only while receiving, never while running the job.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone and queue drained
        };
        depth.fetch_sub(1, Ordering::SeqCst);
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_returns_results_via_channels() {
        let pool = WorkerPool::new(4, 16);
        let (tx, rx) = channel();
        for i in 0..10u32 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || tx.send(i * i).unwrap()))
                .unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn full_queue_rejects_with_the_job_back() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = channel::<()>();
        // Occupy the single worker...
        pool.try_submit(Box::new(move || {
            let _ = block_rx.recv();
        }))
        .unwrap();
        // ...then fill the single queue slot. One of the next two submits
        // must be rejected (the worker may have already dequeued the
        // blocker, leaving one free slot).
        let mut rejected = None;
        for r in [
            pool.try_submit(Box::new(|| {})),
            pool.try_submit(Box::new(|| {})),
        ] {
            if let Err(Some(q)) = r {
                rejected = Some(q);
            }
        }
        let QueueFull(job) = rejected.expect("bounded queue must reject when full");
        job(); // the rejected job is returned intact and still runnable
        block_tx.send(()).unwrap();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.try_submit(Box::new(|| panic!("job exploded")))
            .unwrap();
        let (tx, rx) = channel();
        pool.try_submit(Box::new(move || tx.send(41).unwrap()))
            .unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(41));
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn worker_thread_events_reach_the_pool_sink() {
        use multidim_trace::SharedMemorySink;
        let sink = Arc::new(SharedMemorySink::new());
        let (tx, rx) = channel();
        {
            let pool = WorkerPool::with_sink(2, 8, Some(sink.clone()));
            for i in 0..4u32 {
                let tx = tx.clone();
                pool.try_submit(Box::new(move || {
                    // The regression this guards: before per-worker sink
                    // installation, `enabled()` was false on workers and
                    // these events vanished.
                    assert!(multidim_trace::enabled());
                    multidim_trace::emit(multidim_trace::Event::instant("pool", format!("job{i}")));
                    tx.send(i).unwrap();
                }))
                .unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().count(), 4);
        }
        let events = sink.drain();
        let mut names: Vec<String> = events.into_iter().map(|e| e.name).collect();
        names.sort();
        assert_eq!(names, ["job0", "job1", "job2", "job3"]);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (tx, rx) = channel();
        {
            let pool = WorkerPool::new(2, 64);
            for i in 0..32 {
                let tx = tx.clone();
                pool.try_submit(Box::new(move || tx.send(i).unwrap()))
                    .unwrap();
            }
            // Dropping the pool here must wait for all 32 jobs.
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 32);
    }
}
