//! # multidim-engine — a concurrent compile/run service
//!
//! The rest of the workspace is a single-threaded compiler pipeline:
//! parse → fuse → map (the paper's locality-aware search) → lower →
//! simulate. This crate wraps that pipeline in a service layer so many
//! programs can be compiled and executed concurrently without redoing
//! work:
//!
//! * **content-addressed compilation cache** ([`cache::CompileCache`]) —
//!   requests are keyed by a stable [`Fingerprint`] of the program
//!   structure, the shape of its size bindings, the [`GpuSpec`], and the
//!   compiler configuration. Identical requests share one
//!   `Arc<Executable>`; N concurrent requests for the same key trigger
//!   exactly one compilation (single-flight) while the rest wait on a
//!   condvar. Bounded LRU eviction; hit/miss/evict/coalesce counters
//!   exported through `multidim-trace`.
//! * **bounded worker pool** ([`pool::WorkerPool`]) — std threads and a
//!   `sync_channel`. A full queue *rejects* ([`EngineError::Rejected`])
//!   instead of blocking, requests carry optional deadlines, panics are
//!   contained per-request with `catch_unwind`, and drop/shutdown drains
//!   the queue before joining the workers.
//! * **persistent tuning store** ([`store::TuningStore`]) — versioned
//!   JSON on disk keyed by the same fingerprints. `autotune` results
//!   survive restarts; the engine transparently prefers a stored
//!   empirically-best mapping over the analytic one and records the
//!   analytic-vs-tuned delta. Corrupt or version-mismatched files are
//!   quarantined, never fatal.
//!
//! ## Quick start
//!
//! ```
//! use multidim_engine::{Engine, EngineConfig, Request};
//! use multidim::Compiler;
//!
//! let engine = Engine::new(Compiler::new(), EngineConfig::default());
//! let (program, bindings, inputs) = multidim_engine::doctest_workload();
//! let ticket = engine.submit(Request::new(program, bindings, inputs)).unwrap();
//! let response = ticket.wait().unwrap();
//! assert!(!response.cache_hit); // first request compiles...
//! let stats = engine.cache_stats();
//! assert_eq!(stats.misses, 1); // ...and populates the cache
//! ```
//!
//! The capstone demo is `examples/serve.rs`, which replays the whole
//! 25-entry workload catalog through the engine and reports throughput,
//! cache hit rate, queue depth, and latency percentiles.

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod pool;
pub mod store;

pub use cache::{CacheStats, CompileCache};
pub use engine::{Engine, EngineConfig, EngineStats, Request, Response, Ticket};
pub use error::EngineError;
pub use pool::{Job, QueueFull, WorkerPool};
pub use store::{LoadOutcome, TuneRecord, TuningStore, STORE_VERSION};

use multidim::{Executable, Fingerprint};
use multidim_device::GpuSpec;

// The whole service layer rests on the pipeline types being shareable
// across worker threads; fail compilation loudly if that ever regresses.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Executable>();
    assert_send_sync::<multidim::Compiler>();
    assert_send_sync::<GpuSpec>();
    assert_send_sync::<Fingerprint>();
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineError>();
};

/// A tiny map workload for doctests: a program, bindings, and inputs
/// ready to [`Engine::submit`].
pub fn doctest_workload() -> (
    multidim_ir::Program,
    multidim_ir::Bindings,
    std::collections::HashMap<multidim_ir::ArrayId, Vec<f64>>,
) {
    use multidim_ir::{Expr, ProgramBuilder, ScalarKind, Size};
    let mut b = ProgramBuilder::new("doctest-saxpy");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| {
        b.read(x, &[i.into()]) * Expr::lit(2.0) + Expr::lit(1.0)
    });
    let program = b
        .finish_map(root, "y", ScalarKind::F32)
        .expect("doctest program validates");
    let mut bindings = multidim_ir::Bindings::new();
    bindings.bind(n, 64);
    let mut inputs = std::collections::HashMap::new();
    inputs.insert(x, (0..64).map(f64::from).collect());
    (program, bindings, inputs)
}
