//! Content-addressed compilation cache with single-flight deduplication.
//!
//! The cache maps a [`Fingerprint`] (see [`multidim::fingerprint`]) to a
//! shared [`Arc<Executable>`]. Three properties matter for a service:
//!
//! * **sharing** — N requests for the same program get the *same* arc, so
//!   a hot program is compiled once and held once;
//! * **single-flight** — N *concurrent* requests for a not-yet-cached
//!   program trigger exactly one compile; the others block on a condvar
//!   until the leader publishes (or fails, in which case one waiter takes
//!   over);
//! * **bounded memory** — least-recently-used entries are evicted once
//!   the capacity is exceeded.
//!
//! Hit/miss/eviction/coalesced-wait counters are kept as atomics and can
//! be exported as `multidim-trace` gauge events via
//! [`CompileCache::emit_trace`].

use multidim::{CompileError, Executable, Fingerprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Monotonic counters describing cache behavior since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a ready entry.
    pub hits: u64,
    /// Lookups that started a compile (exactly one per distinct in-flight
    /// fingerprint — the definition of single-flight).
    pub misses: u64,
    /// Ready entries evicted by the LRU policy.
    pub evictions: u64,
    /// Lookups that found a compile already in flight and waited for its
    /// result instead of compiling again. Each one is a deduplicated
    /// compile.
    pub coalesced: u64,
    /// Compiles that failed (failures are not cached; the next request
    /// retries).
    pub failures: u64,
}

#[derive(Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
    failures: AtomicU64,
}

enum Slot {
    Ready {
        exe: Arc<Executable>,
        last_used: u64,
    },
    InFlight,
}

struct Inner {
    map: HashMap<Fingerprint, Slot>,
    tick: u64,
}

/// The cache. All methods take `&self`; share it behind an [`Arc`].
pub struct CompileCache {
    inner: Mutex<Inner>,
    published: Condvar,
    stats: AtomicStats,
    capacity: usize,
}

/// Removes the in-flight marker if the leader's compile panics, so waiters
/// wake up and retake the slot instead of hanging forever.
struct InFlightGuard<'a> {
    cache: &'a CompileCache,
    fp: Fingerprint,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.cache.inner.lock().unwrap();
            if matches!(inner.map.get(&self.fp), Some(Slot::InFlight)) {
                inner.map.remove(&self.fp);
            }
            drop(inner);
            self.cache.published.notify_all();
        }
    }
}

impl CompileCache {
    /// A cache holding at most `capacity` ready executables (minimum 1).
    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            published: Condvar::new(),
            stats: AtomicStats::default(),
            capacity: capacity.max(1),
        }
    }

    /// Publish (or replace) a ready executable under `fp` — used by the
    /// auto-tuner to swap an analytically-mapped entry for the tuned one.
    /// Counts as neither hit nor miss. If the slot is currently in flight
    /// the waiting requests pick up this executable instead.
    pub fn insert(&self, fp: Fingerprint, exe: Arc<Executable>) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            fp,
            Slot::Ready {
                exe,
                last_used: tick,
            },
        );
        self.evict_over_capacity(&mut inner);
        drop(inner);
        self.published.notify_all();
    }

    /// Number of ready entries.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// `true` when no ready entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            failures: self.stats.failures.load(Ordering::Relaxed),
        }
    }

    /// Emit the counters as a `multidim-trace` gauge event (on the calling
    /// thread's sink).
    pub fn emit_trace(&self) {
        if multidim_trace::enabled() {
            let s = self.stats();
            multidim_trace::emit(
                multidim_trace::Event::gauge("engine", "compile_cache")
                    .arg("hits", s.hits)
                    .arg("misses", s.misses)
                    .arg("evictions", s.evictions)
                    .arg("coalesced", s.coalesced)
                    .arg("failures", s.failures)
                    .arg("entries", self.len()),
            );
        }
    }

    /// Look up `fp`, or compile it with `compile` — exactly once across
    /// all concurrent callers. On a hit the stored arc is cloned (callers
    /// can verify pointer equality); on a miss the caller that won the
    /// race compiles while the rest wait. A failed compile is returned to
    /// the leader and *one* waiter is promoted to retry; failures are
    /// never cached.
    pub fn get_or_compile(
        &self,
        fp: Fingerprint,
        compile: impl FnOnce() -> Result<Executable, CompileError>,
    ) -> Result<Arc<Executable>, CompileError> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&fp) {
                Some(Slot::Ready { exe, last_used }) => {
                    *last_used = tick;
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(exe.clone());
                }
                Some(Slot::InFlight) => {
                    self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    // Wait until the leader publishes, fails, or panics;
                    // then re-inspect the slot.
                    inner = self.published.wait(inner).unwrap();
                }
                None => {
                    inner.map.insert(fp, Slot::InFlight);
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        drop(inner);

        let mut guard = InFlightGuard {
            cache: self,
            fp,
            armed: true,
        };
        let result = compile();
        guard.armed = false;
        drop(guard);

        let mut inner = self.inner.lock().unwrap();
        let out = match result {
            Ok(exe) => {
                let exe = Arc::new(exe);
                inner.tick += 1;
                let tick = inner.tick;
                inner.map.insert(
                    fp,
                    Slot::Ready {
                        exe: exe.clone(),
                        last_used: tick,
                    },
                );
                self.evict_over_capacity(&mut inner);
                Ok(exe)
            }
            Err(e) => {
                inner.map.remove(&fp);
                self.stats.failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        };
        drop(inner);
        self.published.notify_all();
        out
    }

    /// Peek without compiling (hit counters unaffected).
    pub fn peek(&self, fp: Fingerprint) -> Option<Arc<Executable>> {
        let inner = self.inner.lock().unwrap();
        match inner.map.get(&fp) {
            Some(Slot::Ready { exe, .. }) => Some(exe.clone()),
            _ => None,
        }
    }

    fn evict_over_capacity(&self, inner: &mut Inner) {
        loop {
            let ready = inner
                .map
                .iter()
                .filter_map(|(fp, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*fp, *last_used)),
                    Slot::InFlight => None,
                })
                .collect::<Vec<_>>();
            if ready.len() <= self.capacity {
                return;
            }
            if let Some((victim, _)) = ready.iter().min_by_key(|(_, used)| *used) {
                inner.map.remove(victim);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidim::prelude::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn program(n: i64, name: &str) -> (Program, Bindings) {
        let mut b = ProgramBuilder::new(name);
        let s = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(s)]);
        let root = b.map(Size::sym(s), |b, i| b.read(a, &[i.into()]));
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(s, n);
        (p, bind)
    }

    fn compile(name: &str, n: i64) -> Executable {
        let (p, b) = program(n, name);
        Compiler::new().compile(&p, &b).unwrap()
    }

    fn fp(tag: u64) -> Fingerprint {
        Fingerprint([tag, !tag])
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = CompileCache::new(4);
        let a = cache
            .get_or_compile(fp(1), || Ok(compile("p", 32)))
            .unwrap();
        let b = cache
            .get_or_compile(fp(1), || panic!("must not recompile"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let cache = CompileCache::new(2);
        cache
            .get_or_compile(fp(1), || Ok(compile("a", 32)))
            .unwrap();
        cache
            .get_or_compile(fp(2), || Ok(compile("b", 32)))
            .unwrap();
        // Touch 1 so 2 is the LRU victim.
        cache.get_or_compile(fp(1), || unreachable!()).unwrap();
        cache
            .get_or_compile(fp(3), || Ok(compile("c", 32)))
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.peek(fp(1)).is_some());
        assert!(cache.peek(fp(2)).is_none(), "2 was least recently used");
        assert!(cache.peek(fp(3)).is_some());
    }

    #[test]
    fn concurrent_same_key_compiles_once() {
        let cache = Arc::new(CompileCache::new(8));
        let compiles = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (cache, compiles, barrier) = (cache.clone(), compiles.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    cache
                        .get_or_compile(fp(7), || {
                            compiles.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters really coalesce.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            Ok(compile("p", 64))
                        })
                        .unwrap()
                })
            })
            .collect();
        let arcs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(compiles.load(Ordering::SeqCst), 1, "single-flight");
        assert!(arcs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        // Every non-leader ultimately reads the published entry as a hit;
        // those that arrived during the flight also counted a coalesced
        // wait (with the 50 ms window, at least one did).
        assert_eq!(s.hits, 7);
        assert!(s.coalesced >= 1);
    }

    #[test]
    fn failed_compile_is_not_cached_and_waiters_retry() {
        let cache = CompileCache::new(4);
        let err = cache.get_or_compile(fp(9), || Err(multidim::CompileError("nope".into())));
        assert!(err.is_err());
        assert_eq!(cache.stats().failures, 1);
        // The slot is free again: the next caller compiles successfully.
        cache
            .get_or_compile(fp(9), || Ok(compile("p", 32)))
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn leader_panic_frees_the_slot() {
        let cache = Arc::new(CompileCache::new(4));
        let c2 = cache.clone();
        let leader = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compile(fp(5), || panic!("compile exploded"))
            }));
        });
        leader.join().unwrap();
        // Slot must not be stuck in-flight.
        cache
            .get_or_compile(fp(5), || Ok(compile("p", 32)))
            .unwrap();
        assert!(cache.peek(fp(5)).is_some());
    }
}
