//! Dynamic-parallelism consolidation, end to end through the `Compiler`:
//! every launch strategy on the irregular workloads must (a) reproduce
//! the interpreter's reference outputs exactly, (b) survive the
//! sanitizer with zero static/dynamic disagreements, and (c) record its
//! decision in the executable's metadata.

use multidim::prelude::*;
use multidim::{cross_check, LaunchStrategy};
use multidim_ir::interpret;
use multidim_workloads::apps::{ragged, spmv};
use multidim_workloads::data::{CsrGraph, Rng};
use std::collections::HashMap;

fn spmv_case(
    rows: usize,
    mean: usize,
    alpha: f64,
) -> (Program, Bindings, HashMap<multidim_ir::ArrayId, Vec<f64>>) {
    let g = CsrGraph::zipf(rows, mean, alpha, 91);
    let (p, n, e, row_ptr, col_idx, vals, x) = spmv::zipf_program(g.mean_degree());
    let mut bind = Bindings::new();
    bind.bind(n, g.nodes as i64);
    bind.bind(e, g.edges as i64);
    let vs: Vec<f64> = (0..g.edges).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
    let xs: Vec<f64> = (0..g.nodes).map(|i| (i % 7) as f64 * 0.25).collect();
    let inputs: HashMap<_, _> = [
        (row_ptr, g.row_ptr.clone()),
        (col_idx, g.col_idx.clone()),
        (vals, vs),
        (x, xs),
    ]
    .into_iter()
    .collect();
    (p, bind, inputs)
}

fn ragged_case(
    segments: usize,
    mean: usize,
) -> (Program, Bindings, HashMap<multidim_ir::ArrayId, Vec<f64>>) {
    let g = CsrGraph::zipf(segments, mean, 1.0, 29);
    let (p, n, e, seg_ptr, data, _out, _counts) = ragged::program(g.mean_degree());
    let mut bind = Bindings::new();
    bind.bind(n, g.nodes as i64);
    bind.bind(e, g.edges as i64);
    let inputs: HashMap<_, _> = [
        (seg_ptr, g.row_ptr.clone()),
        (data, ragged::element_data(g.edges)),
    ]
    .into_iter()
    .collect();
    (p, bind, inputs)
}

/// Compile under `config`, run sanitized, and check outputs against the
/// interpreter plus the zero-disagreement invariant. Returns the
/// executable for decision-metadata assertions.
fn check(
    p: &Program,
    bind: &Bindings,
    inputs: &HashMap<multidim_ir::ArrayId, Vec<f64>>,
    config: DynParConfig,
) -> Executable {
    let exe = Compiler::new().dynpar(config).compile(p, bind).unwrap();
    let (run, san) = exe.run_sanitized(inputs).unwrap();
    let disagreements = cross_check(&exe.diagnostics, &san);
    assert!(
        disagreements.is_empty(),
        "{}: {}",
        p.name,
        disagreements.join("; ")
    );
    let reference = interpret(p, bind, inputs).unwrap();
    for decl in &p.arrays {
        if matches!(decl.role, multidim_ir::ArrayRole::Output) {
            assert_eq!(
                run.outputs[&decl.id],
                reference.array(decl.id).data,
                "{}: output `{}` diverges from the interpreter",
                p.name,
                decl.name
            );
        }
    }
    exe
}

fn forced(strategy: LaunchStrategy) -> DynParConfig {
    DynParConfig {
        policy: DynParPolicy::Force(strategy),
        ..DynParConfig::default()
    }
}

#[test]
fn spmv_matches_interpreter_under_every_strategy() {
    let (p, bind, inputs) = spmv_case(384, 8, 1.0);
    for strategy in [
        LaunchStrategy::Naive,
        LaunchStrategy::Coarsen(8),
        LaunchStrategy::Aggregate,
    ] {
        let exe = check(&p, &bind, &inputs, forced(strategy));
        let site = exe.dynpar.site.as_ref().expect("site expected");
        assert_eq!(site.strategy, strategy, "decision metadata mismatch");
        assert!(!site.modeled.is_empty());
    }
    // Auto on this small instance thresholds back to Inline.
    let exe = check(&p, &bind, &inputs, DynParConfig::default());
    let site = exe.dynpar.site.as_ref().expect("site expected");
    assert_eq!(site.strategy, LaunchStrategy::Inline);
}

#[test]
fn ragged_matches_interpreter_under_every_strategy() {
    let (p, bind, inputs) = ragged_case(300, 9);
    for strategy in [
        LaunchStrategy::Naive,
        LaunchStrategy::Coarsen(6),
        LaunchStrategy::Aggregate,
    ] {
        let exe = check(&p, &bind, &inputs, forced(strategy));
        assert_eq!(exe.dynpar.site.as_ref().map(|s| s.strategy), Some(strategy));
    }
}

#[test]
fn auto_consolidation_beats_naive_at_scale() {
    // The catalog's spmv_zipf size: Auto must consolidate and the
    // consolidated schedule must be materially faster than per-row child
    // launches.
    let (p, bind, inputs) = spmv_case(4096, 16, 1.0);
    let auto = Compiler::new().compile(&p, &bind).unwrap();
    let site = auto.dynpar.site.as_ref().expect("site expected");
    assert_ne!(site.strategy, LaunchStrategy::Inline, "{}", site.reason);
    let naive = Compiler::new()
        .dynpar(forced(LaunchStrategy::Naive))
        .compile(&p, &bind)
        .unwrap();
    let fast = auto.run(&inputs).unwrap();
    let slow = naive.run(&inputs).unwrap();
    assert_eq!(
        fast.outputs[&p.output.unwrap()],
        slow.outputs[&p.output.unwrap()]
    );
    assert!(
        slow.gpu_seconds >= 2.0 * fast.gpu_seconds,
        "consolidation speedup only {:.2}x (naive {:.1}us vs {:.1}us)",
        slow.gpu_seconds / fast.gpu_seconds,
        slow.gpu_seconds * 1e6,
        fast.gpu_seconds * 1e6
    );
}

#[test]
fn consolidated_strategies_match_on_random_structures() {
    // Randomized segment structures (seeded): every strategy agrees with
    // the interpreter bit-for-bit on ragged data with empty, tiny, and
    // hub segments.
    let mut rng = Rng::new(17);
    for case in 0..3 {
        let segments = 96 + rng.below(64);
        let mean = 2 + rng.below(12);
        let (p, bind, inputs) = ragged_case(segments, mean);
        for strategy in [
            LaunchStrategy::Naive,
            LaunchStrategy::Coarsen(5),
            LaunchStrategy::Aggregate,
        ] {
            let _ = check(&p, &bind, &inputs, forced(strategy));
        }
        let _ = case;
    }
}
