//! Performance-shape assertions: the qualitative claims of the paper's
//! evaluation, checked on the simulator.

use multidim::prelude::*;
use multidim_workloads::apps::{msm, naive_bayes, qpscd};
use multidim_workloads::rodinia::{hotspot, mandelbrot, srad, Traversal};
use multidim_workloads::sums::{run_sum, SumKind};

/// Section I / Figure 3: no fixed strategy wins everywhere, MultiDim is
/// never (much) worse than any of them.
#[test]
fn multidim_is_never_much_worse_than_fixed() {
    for kind in [SumKind::Rows, SumKind::Cols] {
        // Shapes chosen outside the launch-overhead gray zone (tiny kernels
        // where a Split's combiner launch costs more than it recovers).
        for (r, c) in [(2048, 256), (512, 512), (64, 16384)] {
            let best = run_sum(kind, Strategy::MultiDim, r, c).unwrap().gpu_seconds;
            for s in [
                Strategy::OneD,
                Strategy::ThreadBlockThread,
                Strategy::WarpBased,
            ] {
                let t = run_sum(kind, s, r, c).unwrap().gpu_seconds;
                // Tolerance 1.5: the paper itself shows fixed strategies
                // occasionally a few percent ahead (Figure 13's 0.98 warp
                // rows); "never much worse" is the claim.
                assert!(
                    best <= t * 1.5,
                    "{kind:?} [{r},{c}]: MultiDim {best} vs {s} {t}"
                );
            }
        }
    }
}

/// Figure 3's headline: a fixed mapping can be an order of magnitude off.
#[test]
fn fixed_strategies_collapse_somewhere() {
    let best = run_sum(SumKind::Rows, Strategy::MultiDim, 256, 4096)
        .unwrap()
        .gpu_seconds;
    let one_d = run_sum(SumKind::Rows, Strategy::OneD, 256, 4096)
        .unwrap()
        .gpu_seconds;
    assert!(one_d > 10.0 * best, "1D {one_d} vs MultiDim {best}");

    let best_c = run_sum(SumKind::Cols, Strategy::MultiDim, 512, 1024)
        .unwrap()
        .gpu_seconds;
    let warp = run_sum(SumKind::Cols, Strategy::WarpBased, 512, 1024)
        .unwrap()
        .gpu_seconds;
    assert!(warp > 4.0 * best_c, "warp {warp} vs MultiDim {best_c}");
}

/// Figure 13: column-major traversals hurt fixed strategies much more
/// than MultiDim.
#[test]
fn column_traversal_punishes_fixed_strategies() {
    let md = srad::run(Traversal::ColMajor, Strategy::MultiDim, 96, 96, 1)
        .unwrap()
        .gpu_seconds;
    let tb = srad::run(Traversal::ColMajor, Strategy::ThreadBlockThread, 96, 96, 1)
        .unwrap()
        .gpu_seconds;
    assert!(tb > 2.0 * md, "TB/T {tb} vs MultiDim {md}");

    let md_h = hotspot::run(Traversal::ColMajor, Strategy::MultiDim, 128, 128, 1)
        .unwrap()
        .gpu_seconds;
    let wb = hotspot::run(Traversal::ColMajor, Strategy::WarpBased, 128, 128, 1)
        .unwrap()
        .gpu_seconds;
    assert!(wb > 2.0 * md_h, "warp {wb} vs MultiDim {md_h}");
}

/// Figure 13: row-major traversals roughly tie.
#[test]
fn row_traversal_is_forgiving() {
    let md = mandelbrot::run(Traversal::RowMajor, Strategy::MultiDim, 128, 256)
        .unwrap()
        .gpu_seconds;
    for s in [Strategy::ThreadBlockThread, Strategy::WarpBased] {
        let t = mandelbrot::run(Traversal::RowMajor, s, 128, 256)
            .unwrap()
            .gpu_seconds;
        let ratio = t / md;
        assert!((0.5..2.5).contains(&ratio), "{s}: ratio {ratio}");
    }
}

/// Figure 14 QPSCD: 1D cannot beat the CPU (random outer accesses);
/// MultiDim can.
#[test]
fn qpscd_shape() {
    let cpu = qpscd::cpu_seconds(384, 1);
    let od = qpscd::run(Strategy::OneD, 384, 1).unwrap().gpu_seconds;
    let md = qpscd::run(Strategy::MultiDim, 384, 1).unwrap().gpu_seconds;
    assert!(od > 0.6 * cpu, "1D {od} should be near/above CPU {cpu}");
    assert!(md < 0.6 * cpu, "MultiDim {md} should beat CPU {cpu}");
    assert!(md < od / 3.0, "MultiDim {md} should be well under 1D {od}");
}

/// Figure 14 MSM: small domains starve 1D; MultiDim exploits the product.
#[test]
fn msm_shape() {
    let od = msm::run(Strategy::OneD, 96, 48, 48).unwrap().gpu_seconds;
    let md = msm::run(Strategy::MultiDim, 96, 48, 48)
        .unwrap()
        .gpu_seconds;
    assert!(md < od / 3.0, "MultiDim {md} vs 1D {od}");
}

/// Figure 14 NB: the transfer eats most of the non-iterative win.
#[test]
fn naive_bayes_transfer_dominates() {
    let nb = naive_bayes::run(Strategy::MultiDim, 512, 2048).unwrap();
    assert!(nb.gpu_seconds_with_transfer > 3.0 * nb.gpu_seconds);
}

/// Section IV-D: the search completes quickly (paper: "less than a few
/// seconds"; ours is far faster, but assert the generous bound).
#[test]
fn search_is_fast_for_three_levels() {
    let mut b = ProgramBuilder::new("deep");
    let n = b.sym("N");
    let a = b.input(
        "a",
        ScalarKind::F32,
        &[Size::sym(n), Size::sym(n), Size::sym(n)],
    );
    let root = b.map(Size::sym(n), |b, i| {
        b.map(Size::sym(n), |b, j| {
            b.reduce(Size::sym(n), ReduceOp::Add, |b, k| {
                b.read(a, &[i.into(), j.into(), k.into()])
            })
        })
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 256);
    let start = std::time::Instant::now();
    let analysis = multidim_mapping::analyze(&p, &bind, &GpuSpec::tesla_k20c());
    let elapsed = start.elapsed();
    assert!(elapsed.as_secs_f64() < 5.0, "search took {elapsed:?}");
    assert!(analysis.candidates > 100, "search space looked too small");
}

/// ControlDOP: selected mappings respect the device's DOP window when the
/// workload allows it.
#[test]
fn control_dop_window() {
    use multidim_ir::ReduceOp;
    let gpu = GpuSpec::tesla_k20c();
    for (r, c) in [(64, 100_000), (100_000, 64), (4096, 4096)] {
        let mut b = ProgramBuilder::new("s");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(rs), |b, row| {
            b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        let a = multidim_mapping::analyze(&p, &bind, &gpu);
        // Split only fires for deficits >= 2x, so the lower edge is
        // min_dop / 2.
        assert!(
            a.dop >= gpu.min_dop() / 2 && a.dop <= gpu.max_dop(),
            "[{r},{c}]: dop {} outside [{}, {}] for {}",
            a.dop,
            gpu.min_dop() / 2,
            gpu.max_dop(),
            a.decision
        );
    }
}
