//! Sanitizer cross-check: the simulator records the actual per-kernel
//! write sets, and every verdict the static analyzer *proved* must agree
//! with what the hardware (simulator) actually did. A disagreement in
//! either direction is a test failure.

use multidim::prelude::*;
use multidim::{cross_check, SanitizerReport, Verdict};
use multidim_workloads::catalog::catalog;
use std::collections::HashMap;

/// Every shipped workload: run under the sanitizer and dynamically confirm
/// each `Proven` race-free verdict (zero recorded conflicts on that array)
/// and each `Proven` in-bounds verdict (the run completes — the simulator
/// faults on any out-of-bounds access).
#[test]
fn every_static_verdict_survives_the_sanitizer() {
    let mut tracked = 0;
    for e in catalog() {
        let exe = Compiler::new()
            .compile(&e.program, &e.bindings)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name()));
        let (_, san) = exe
            .run_sanitized(&e.inputs)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name()));
        let disagreements = cross_check(&exe.diagnostics, &san);
        assert!(
            disagreements.is_empty(),
            "{}: {}",
            e.name(),
            disagreements.join("; ")
        );
        tracked += san.tracked_stores;
    }
    // Programs whose only global writes are atomics (e.g. groupBy kernels)
    // legitimately track nothing, but the sweep as a whole must have
    // exercised the tracker.
    assert!(tracked > 0, "sanitizer saw no stores across the catalog");
}

/// The sanitizer catches the seeded race that the static analyzer proves:
/// compile with checks off (the analyzer would abort otherwise), run, and
/// the write tracker must observe the collision.
#[test]
fn sanitizer_catches_the_seeded_race() {
    let mut b = ProgramBuilder::new("racy");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let y = b.output("y", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.foreach(Size::sym(n), |b, i| {
        let v = b.read(x, &[i.into()]);
        vec![Effect::Write {
            cond: None,
            array: y,
            idx: vec![Expr::int(0)],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 256);

    // Static: proven race (checks on would abort with MD001).
    let report = multidim::analyze_program(&p, &bind);
    assert_eq!(report.race_free(y), Verdict::Refuted);

    // Dynamic: the sanitizer sees two threads store the same element.
    let exe = Compiler::new().checks(false).compile(&p, &bind).unwrap();
    let inputs: HashMap<_, _> = [(x, vec![1.0; 256])].into_iter().collect();
    let (_, san) = exe.run_sanitized(&inputs).unwrap();
    assert!(san.has_conflicts(), "sanitizer missed the race");
    let c = &san.conflicts[0];
    assert_ne!(c.first_tid, c.second_tid);
    assert_eq!(c.index, 0);

    // Refuted verdicts impose no cross-check constraint: static and
    // dynamic agree the program races, so no disagreement is reported.
    assert!(cross_check(&report, &san).is_empty());
}

/// The cross-check itself: a (fabricated) report claiming race-freedom for
/// an array the sanitizer saw conflict on must come back as a disagreement.
#[test]
fn cross_check_flags_a_wrong_proof() {
    let mut b = ProgramBuilder::new("racy");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let y = b.output("y", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.foreach(Size::sym(n), |b, i| {
        let v = b.read(x, &[i.into()]);
        vec![Effect::Write {
            cond: None,
            array: y,
            idx: vec![Expr::int(0)],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);

    let exe = Compiler::new().checks(false).compile(&p, &bind).unwrap();
    let inputs: HashMap<_, _> = [(x, vec![1.0; 64])].into_iter().collect();
    let (_, san) = exe.run_sanitized(&inputs).unwrap();
    assert!(san.has_conflicts());

    // Forge a "proven race-free" verdict for y.
    let mut report = multidim::analyze_program(&p, &bind);
    for v in &mut report.arrays {
        v.race_free = Verdict::Proven;
    }
    let disagreements = cross_check(&report, &san);
    assert_eq!(disagreements.len(), 1, "{disagreements:?}");
    assert!(disagreements[0].contains("y"), "{}", disagreements[0]);
}

/// Sanitizer reports are inert for a conflict-free program.
#[test]
fn clean_program_has_clean_sanitizer_report() {
    let mut b = ProgramBuilder::new("scale");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| b.read(x, &[i.into()]) * Expr::lit(3.0));
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 1000);

    let exe = Compiler::new().compile(&p, &bind).unwrap();
    let inputs: HashMap<_, _> = [(x, vec![2.0; 1000])].into_iter().collect();
    let (run, san) = exe.run_sanitized(&inputs).unwrap();
    assert!(!san.has_conflicts());
    assert!(san.tracked_stores >= 1000);
    assert_eq!(run.outputs[&p.output.unwrap()][0], 6.0);
    assert_eq!(SanitizerReport::default().conflicts.len(), 0);
}
