//! Load-generator integration: the zipf schedule is deterministic under a
//! fixed seed, closed-loop runs account for every request, the dashboard
//! figures match independently computed values, and the regression gate
//! accepts the committed load baseline while rejecting doctored ones.

use multidim::Compiler;
use multidim_bench::loadgen::{
    client_schedule, run_load, run_load_fleet, schedule_digest, tenant_of, LoadConfig, LoadMode,
    ZipfSampler,
};
use multidim_bench::regression::{check_load, sample_count, Schema, DEFAULT_TOLERANCE};
use multidim_engine::{Engine, EngineConfig};
use multidim_obs::Slo;
use multidim_serve::{FrontDoor, FrontDoorConfig, QuotaPolicy};
use multidim_trace::json::Json;
use multidim_workloads::catalog::{catalog, CatalogEntry};
use multidim_workloads::data::Rng;
use std::time::Duration;

fn test_engine(queue: usize) -> Engine {
    Engine::new(
        Compiler::new(),
        EngineConfig {
            workers: 2,
            queue_capacity: queue,
            cache_capacity: 64,
            store_path: None,
            ..EngineConfig::default()
        },
    )
}

fn small_catalog() -> Vec<CatalogEntry> {
    catalog().into_iter().take(5).collect()
}

fn closed_cfg(requests_per_client: usize) -> LoadConfig {
    LoadConfig {
        clients: 2,
        tenants: 1,
        skew: 1.0,
        seed: 42,
        mode: LoadMode::ClosedCount {
            requests_per_client,
        },
        slo: Slo::new("test", 0.99, 0.050),
        window: Duration::from_millis(50),
        windows: 16,
        alert_rules: LoadConfig::default_alert_rules(),
    }
}

#[test]
fn zipf_mass_is_monotone_and_skew_sharpens_it() {
    let z = ZipfSampler::new(10, 1.0);
    let masses: Vec<f64> = (0..10).map(|r| z.mass(r)).collect();
    for pair in masses.windows(2) {
        assert!(
            pair[0] > pair[1],
            "mass must decrease with rank: {masses:?}"
        );
    }
    let total: f64 = masses.iter().sum();
    assert!((total - 1.0).abs() < 1e-12, "masses sum to 1, got {total}");

    let flat = ZipfSampler::new(10, 0.5);
    let sharp = ZipfSampler::new(10, 2.0);
    assert!(sharp.mass(0) > z.mass(0) && z.mass(0) > flat.mass(0));

    // Empirical frequencies track the analytic mass.
    let mut rng = Rng::new(7);
    let mut counts = [0usize; 10];
    let draws = 20_000;
    for _ in 0..draws {
        counts[z.sample(&mut rng)] += 1;
    }
    for (r, &c) in counts.iter().enumerate() {
        let freq = c as f64 / draws as f64;
        assert!(
            (freq - z.mass(r)).abs() < 0.02,
            "rank {r}: empirical {freq:.4} vs analytic {:.4}",
            z.mass(r)
        );
    }
}

#[test]
fn schedules_are_deterministic_per_seed_and_distinct_per_client() {
    let a = client_schedule(25, 1.0, 42, 0, 500);
    let b = client_schedule(25, 1.0, 42, 0, 500);
    assert_eq!(a, b, "same seed + client must replay the same schedule");

    let other_client = client_schedule(25, 1.0, 42, 1, 500);
    assert_ne!(a, other_client, "clients draw from independent streams");
    let other_seed = client_schedule(25, 1.0, 7, 0, 500);
    assert_ne!(a, other_seed, "the seed changes every stream");

    assert_eq!(
        schedule_digest(25, 1.0, 42, 8),
        schedule_digest(25, 1.0, 42, 8)
    );
    assert_ne!(
        schedule_digest(25, 1.0, 42, 8),
        schedule_digest(25, 1.0, 43, 8)
    );
    assert_ne!(
        schedule_digest(25, 1.0, 42, 8),
        schedule_digest(25, 1.2, 42, 8)
    );
}

#[test]
fn closed_loop_accounts_for_every_request_and_is_reproducible() {
    let entries = small_catalog();
    let cfg = closed_cfg(10);

    let engine = test_engine(16);
    let report = run_load(&engine, &entries, &cfg);
    engine.shutdown();

    // Every request the schedule issued is in exactly one outcome bucket.
    assert_eq!(report.attempted, 20, "2 clients x 10 requests");
    assert_eq!(
        report.completed + report.shed + report.expired + report.failed,
        report.attempted
    );
    let rows_attempted: u64 = report.per_workload.iter().map(|w| w.attempted).sum();
    let rows_completed: u64 = report.per_workload.iter().map(|w| w.completed).sum();
    assert_eq!(rows_attempted, report.attempted);
    assert_eq!(rows_completed, report.completed);
    // Closed loop with an ample queue: nothing sheds, nothing expires.
    assert_eq!(report.shed, 0);
    assert_eq!(report.expired, 0);
    assert_eq!(report.failed, 0);

    // Dashboard figures match independent arithmetic.
    assert!((report.availability() - 1.0).abs() < 1e-12);
    assert!((report.shed_rate() - 0.0).abs() < 1e-12);
    let text = report.render_text();
    assert!(text.contains("availability 100.000%"), "{text}");

    // A second run with the same seed replays the same schedule: the
    // per-workload attempted distribution is identical.
    let engine2 = test_engine(16);
    let report2 = run_load(&engine2, &entries, &cfg);
    engine2.shutdown();
    assert_eq!(report.schedule_digest, report2.schedule_digest);
    let dist = |r: &multidim_bench::loadgen::LoadReport| {
        r.per_workload
            .iter()
            .map(|w| (w.name.clone(), w.attempted))
            .collect::<Vec<_>>()
    };
    assert_eq!(dist(&report), dist(&report2));
}

#[test]
fn report_json_carries_the_gate_schema_and_self_gates() {
    let entries = small_catalog();
    let engine = test_engine(16);
    let report = run_load(&engine, &entries, &closed_cfg(8));
    engine.shutdown();

    let j = report.to_json();
    let parsed = Json::parse(&j.render()).expect("report renders valid JSON");
    for key in [
        "p99_under_load_us",
        "shed_rate",
        "availability",
        "samples",
        "requests",
        "schedule_digest",
        "per_workload",
        "slo",
        "series",
    ] {
        assert!(parsed.get(key).is_some(), "report JSON must carry `{key}`");
    }
    assert_eq!(Schema::detect(&parsed), Some(Schema::Load));
    assert_eq!(sample_count(&parsed), Some(report.completed));

    // Consistency between the struct and its JSON.
    let f = |k: &str| parsed.get(k).and_then(Json::as_f64).unwrap();
    assert!((f("shed_rate") - report.shed_rate()).abs() < 1e-6);
    assert!((f("availability") - report.availability()).abs() < 1e-6);

    // A report gates cleanly against itself...
    let gate = check_load(&parsed, &parsed, DEFAULT_TOLERANCE).unwrap();
    assert!(gate.passed(), "{}", gate.render());
    // ...and fails against a 2x-doctored copy of its tail latency.
    let doctored = doctor(&parsed, "p99_under_load_us", 2.0);
    let gate = check_load(&parsed, &doctored, DEFAULT_TOLERANCE).unwrap();
    assert!(!gate.passed(), "{}", gate.render());
}

#[test]
fn shed_rate_and_slo_figures_match_hand_computation_under_overload() {
    // Queue of 1 with open-loop fire rate far above a 2-worker debug
    // engine's capacity: most requests must shed, and the dashboard's
    // shed-rate and SLO availability must equal the hand-computed ratios.
    let entries = small_catalog();
    let engine = test_engine(1);
    let cfg = LoadConfig {
        clients: 4,
        tenants: 1,
        skew: 1.0,
        seed: 42,
        mode: LoadMode::Open {
            target_rps: 2000.0,
            duration: Duration::from_millis(600),
        },
        slo: Slo::new("test", 0.99, 0.050),
        window: Duration::from_millis(50),
        windows: 32,
        alert_rules: LoadConfig::default_alert_rules(),
    };
    let report = run_load(&engine, &entries, &cfg);
    engine.shutdown();

    assert!(
        report.shed > 0,
        "open loop at 2000 rps must overflow queue 1"
    );
    let expected_shed = report.shed as f64 / report.attempted as f64;
    assert!((report.shed_rate() - expected_shed).abs() < 1e-12);
    let expected_avail = report.completed as f64 / report.attempted as f64;
    assert!((report.availability() - expected_avail).abs() < 1e-12);

    // The SLO tracker saw every outcome: its totals are the client-side
    // totals, and its availability SLI is the same ratio.
    assert_eq!(report.slo.samples, report.attempted);
    assert_eq!(
        report.slo.errors,
        report.shed + report.expired + report.failed
    );
    let slo_avail = report.slo.availability.expect("non-empty run");
    assert!(
        (slo_avail - expected_avail).abs() < 1e-12,
        "SLO availability {slo_avail} vs hand-computed {expected_avail}"
    );

    // Overload telemetry was sampled.
    assert!(report.series.iter().any(|s| !s.series.is_empty()));
}

#[test]
fn committed_load_baseline_passes_its_own_gate_and_rejects_doctored_runs() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_load_baseline.json"
    );
    let text = std::fs::read_to_string(path).expect("committed BENCH_load_baseline.json");
    let baseline = Json::parse(&text).expect("baseline is valid JSON");
    assert_eq!(Schema::detect(&baseline), Some(Schema::Load));

    let gate = check_load(&baseline, &baseline, DEFAULT_TOLERANCE).unwrap();
    assert!(gate.passed(), "{}", gate.render());

    let slow = doctor(&baseline, "p99_under_load_us", 2.0);
    let gate = check_load(&baseline, &slow, DEFAULT_TOLERANCE).unwrap();
    assert!(!gate.passed(), "2x p99 must fail: {}", gate.render());

    let shedding = doctor(&baseline, "shed_rate", 2.0);
    let gate = check_load(&baseline, &shedding, DEFAULT_TOLERANCE).unwrap();
    assert!(!gate.passed(), "2x shed rate must fail: {}", gate.render());
}

fn test_fleet(shards: usize, queue: usize, quota: QuotaPolicy) -> FrontDoor {
    FrontDoor::new(
        Compiler::new(),
        FrontDoorConfig {
            shards,
            shard: EngineConfig {
                workers: 2,
                queue_capacity: queue,
                cache_capacity: 64,
                store_path: None,
                ..EngineConfig::default()
            },
            quota,
            ..FrontDoorConfig::default()
        },
    )
}

#[test]
fn fleet_closed_loop_accounts_per_tenant_and_matches_the_assignment() {
    let entries = small_catalog();
    let cfg = LoadConfig {
        tenants: 3,
        clients: 4,
        ..closed_cfg(6)
    };
    let door = test_fleet(3, 32, QuotaPolicy::default());
    let report = run_load_fleet(&door, &entries, &cfg);
    door.shutdown();

    assert_eq!(report.shards, Some(3));
    assert_eq!(report.tenants, 3);
    assert_eq!(report.attempted, 24, "4 clients x 6 requests");
    assert_eq!(report.completed, 24, "ample queue: everything serves");
    assert_eq!(report.quota_rejected, 0);

    // Per-tenant rows partition the traffic, and each tenant's request
    // count is exactly its deterministically assigned clients' share.
    let rows_requests: u64 = report.per_tenant.iter().map(|t| t.requests).sum();
    let rows_completed: u64 = report.per_tenant.iter().map(|t| t.completed).sum();
    assert_eq!(rows_requests, report.attempted);
    assert_eq!(rows_completed, report.completed);
    for (i, row) in report.per_tenant.iter().enumerate() {
        let clients_here = (0..cfg.clients)
            .filter(|&c| tenant_of(cfg.seed, c, cfg.tenants) == i)
            .count() as u64;
        assert_eq!(
            row.requests,
            clients_here * 6,
            "tenant {i} rows disagree with the seeded assignment"
        );
    }
}

#[test]
fn fleet_report_json_gates_against_a_single_engine_baseline() {
    // The sharded path emits the same gate schema as the single-engine
    // path, so the committed baseline gates both.
    let entries = small_catalog();
    let engine = test_engine(32);
    let single = run_load(&engine, &entries, &closed_cfg(8));
    engine.shutdown();
    let door = test_fleet(4, 32, QuotaPolicy::default());
    let fleet = run_load_fleet(
        &door,
        &entries,
        &LoadConfig {
            tenants: 4,
            ..closed_cfg(8)
        },
    );
    door.shutdown();

    let single_json = Json::parse(&single.to_json().render()).unwrap();
    let fleet_json = Json::parse(&fleet.to_json().render()).unwrap();
    assert_eq!(Schema::detect(&fleet_json), Some(Schema::Load));
    for key in ["tenants", "shards", "quota_rejected", "per_tenant"] {
        assert!(
            fleet_json.get(key).is_some(),
            "fleet JSON must carry `{key}`"
        );
    }
    assert_eq!(fleet_json.get("shards").and_then(Json::as_f64), Some(4.0));
    // Same schedule, same catalog: the fleet run completes everything
    // the single engine did, and the gate accepts it.
    let gate = check_load(&single_json, &fleet_json, DEFAULT_TOLERANCE).unwrap();
    assert!(
        gate.passed(),
        "sharded run must gate against the single-engine baseline: {}",
        gate.render()
    );

    // Per-tenant quota enforcement shows up in the report: burst 2 and
    // zero refill caps every tenant at 2 completions.
    let door = test_fleet(2, 32, QuotaPolicy::per_tenant(0.0, 2.0));
    let quota_run = run_load_fleet(
        &door,
        &entries,
        &LoadConfig {
            tenants: 2,
            clients: 2,
            ..closed_cfg(5)
        },
    );
    door.shutdown();
    assert_eq!(quota_run.attempted, 10);
    for row in &quota_run.per_tenant {
        // Every client maps to some tenant; rows with traffic obey the cap.
        assert!(row.completed <= 2, "tenant {} exceeded its burst", row.name);
        assert_eq!(row.quota_rejected, row.requests - row.completed);
    }
    assert_eq!(
        quota_run.quota_rejected,
        quota_run.attempted - quota_run.completed
    );
}

/// A copy of `report` with `key` multiplied by `factor`.
fn doctor(report: &Json, key: &str, factor: f64) -> Json {
    match report {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, v)| {
                    if k == key {
                        let scaled = v.as_f64().expect("doctored key is numeric") * factor;
                        (k.clone(), Json::Num(scaled))
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect(),
        ),
        _ => panic!("report must be an object"),
    }
}
