//! Round-trip the simulator metrics export through its own JSON codec for
//! every catalog workload: `RunMetrics::parse(m.render())` must reproduce
//! `m` exactly. `Json::Num` renders with shortest-round-trip formatting,
//! so every `f64` — simulated times, efficiencies, normalized scores —
//! survives the text round trip bit-for-bit and full `PartialEq` holds.

use multidim::Compiler;
use multidim_sim::RunMetrics;
use multidim_workloads::catalog::catalog;

#[test]
fn run_metrics_round_trip_over_the_whole_catalog() {
    let entries = catalog();
    assert!(
        entries.len() >= 20,
        "catalog shrank to {} entries",
        entries.len()
    );
    let compiler = Compiler::new();
    for e in &entries {
        let exe = compiler
            .compile(&e.program, &e.bindings)
            .unwrap_or_else(|err| panic!("{} must compile: {err}", e.name()));
        let run = exe
            .run(&e.inputs)
            .unwrap_or_else(|err| panic!("{} must run: {err}", e.name()));
        let m = exe.metrics(&run);
        assert!(!m.kernels.is_empty(), "{} launched no kernels", e.name());

        // Text round trip: render → parse.
        let parsed = RunMetrics::parse(&m.render())
            .unwrap_or_else(|err| panic!("{} metrics must parse back: {err}", e.name()));
        assert_eq!(
            parsed,
            m,
            "{} metrics changed across render/parse",
            e.name()
        );

        // Value round trip: to_json → from_json (no text in between).
        let from_value = RunMetrics::from_json(&m.to_json())
            .unwrap_or_else(|err| panic!("{} metrics must decode: {err}", e.name()));
        assert_eq!(
            from_value,
            m,
            "{} metrics changed across to/from_json",
            e.name()
        );
    }
}

#[test]
fn parse_rejects_garbage_and_wrong_shapes() {
    assert!(RunMetrics::parse("not json").is_err());
    assert!(RunMetrics::parse("[]").is_err(), "arrays are not metrics");
    assert!(
        RunMetrics::parse("{\"program\":\"x\"}").is_err(),
        "missing fields must not default silently"
    );
}
