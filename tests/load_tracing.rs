//! Load-generator acceptance for the closed tracing/alerting loop: an
//! overloaded run keeps a trace for every shed/expired/failed request,
//! tail-samples the boring completions with exact drop accounting,
//! publishes only resolvable exemplars, and logs the burn-rate alert
//! transitions. Lives in its own test binary so the process-global
//! trace store sees no traffic from unrelated tests and the sampler
//! counters can be asserted exactly.

use multidim::Compiler;
use multidim_bench::loadgen::{run_load, LoadConfig, LoadMode};
use multidim_engine::{Engine, EngineConfig};
use multidim_obs::Slo;
use multidim_trace::{install_store, trace_id_hex, TailSamplerConfig, TraceStore};
use multidim_workloads::catalog::catalog;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn overloaded_run_keeps_every_bad_trace_and_samples_the_boring_ones() {
    let store = Arc::new(TraceStore::new(TailSamplerConfig {
        capacity: 32_768,
        ..TailSamplerConfig::default()
    }));
    let _guard = install_store(store.clone());

    // Queue of 1 with an open-loop fire rate far above a 2-worker debug
    // engine's capacity: most requests shed, some complete.
    let entries: Vec<_> = catalog().into_iter().take(5).collect();
    let engine = Engine::new(
        Compiler::new(),
        EngineConfig {
            workers: 2,
            queue_capacity: 1,
            cache_capacity: 64,
            store_path: None,
            ..EngineConfig::default()
        },
    );
    let cfg = LoadConfig {
        clients: 4,
        tenants: 1,
        skew: 1.0,
        seed: 42,
        mode: LoadMode::Open {
            target_rps: 2000.0,
            duration: Duration::from_millis(600),
        },
        slo: Slo::new("load", 0.99, 0.050),
        window: Duration::from_millis(50),
        windows: 32,
        alert_rules: LoadConfig::default_alert_rules(),
    };
    let report = run_load(&engine, &entries, &cfg);
    engine.shutdown();

    assert!(
        report.shed > 0,
        "open loop at 2000 rps must overflow queue 1"
    );

    // Terminal accounting: the engine finished exactly one trace per
    // attempted request, and every shed/expired/failed one was kept —
    // the tail sampler never drops an interesting trace.
    let stats = store.stats();
    assert_eq!(stats.finished, report.attempted as u64, "{stats:?}");
    assert_eq!(
        stats.finished_bad,
        (report.shed + report.expired + report.failed) as u64,
        "{stats:?}"
    );
    let bad_kept = store
        .kept_traces()
        .iter()
        .filter(|t| t.outcome.is_bad())
        .count();
    assert_eq!(
        bad_kept as u64, stats.finished_bad,
        "a bad trace was sampled away"
    );

    // Tail sampling: boring (fast, successful) traces are mostly
    // dropped, and every drop is accounted. The keep decision hashes
    // the trace id against the ~5% keep fraction; bound it loosely so
    // the binomial wobble of a short run stays inside the assertion.
    assert_eq!(stats.kept + stats.dropped_sampled, stats.finished);
    if stats.finished_boring >= 40 {
        assert!(
            stats.dropped_sampled > 0,
            "sampler kept every boring trace: {stats:?}"
        );
        assert!(
            (stats.kept_boring as f64) <= 0.20 * stats.finished_boring as f64,
            "sampler kept too many boring traces: {stats:?}"
        );
    }

    // Exemplars: every trace id the report publishes resolves to a
    // stored trace (dropped traces never publish their ids).
    for (bucket, ex) in &report.exemplars {
        let stored = store.lookup(ex.trace_id).unwrap_or_else(|| {
            panic!(
                "exemplar {} in bucket {bucket} does not resolve",
                trace_id_hex(ex.trace_id)
            )
        });
        assert_eq!(stored.trace_id, ex.trace_id);
    }

    // The standing burn-rate rules saw the overload: shedding most of
    // the traffic against a 99% availability SLO burns budget at tens
    // of times the sustainable rate, far past the 6x threshold, so the
    // ticket-severity rule must have logged a firing transition.
    assert!(
        report.alerts.iter().any(|a| a.firing),
        "no alert transition in an overloaded run: {:?}",
        report.alerts
    );
}
