//! Static-analysis pipeline integration: seeded defects must abort
//! compilation with the right `MD` codes, every shipped workload must come
//! back free of error-severity diagnostics, and the analyzer's verdicts
//! must show up in profiling traces.

use multidim::prelude::*;
use multidim::{Severity, Verdict};
use multidim_trace as trace;
use multidim_workloads::catalog::catalog;
use std::collections::HashMap;
use std::rc::Rc;

/// A foreach in which every instance stores to `y[0]` — a proven race.
fn racy_program() -> (Program, Bindings, multidim_ir::ArrayId) {
    let mut b = ProgramBuilder::new("racy");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let y = b.output("y", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.foreach(Size::sym(n), |b, i| {
        let v = b.read(x, &[i.into()]);
        vec![Effect::Write {
            cond: None,
            array: y,
            idx: vec![Expr::int(0)],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    (p, bind, x)
}

/// A map that reads `x[i + N]` — every access lands past the end.
fn oob_program() -> (Program, Bindings) {
    let mut b = ProgramBuilder::new("oob");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| {
        b.read(x, &[Expr::var(i) + Expr::size(Size::sym(n))])
    });
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    (p, bind)
}

#[test]
fn seeded_race_aborts_compilation_with_md001() {
    let (p, bind, _) = racy_program();
    let err = Compiler::new().compile(&p, &bind).unwrap_err();
    assert!(err.0.contains("MD001"), "{err}");
    assert!(err.0.contains("racy"), "{err}");
}

#[test]
fn seeded_oob_aborts_compilation_with_md003() {
    let (p, bind) = oob_program();
    let err = Compiler::new().compile(&p, &bind).unwrap_err();
    assert!(err.0.contains("MD003"), "{err}");
}

#[test]
fn checks_off_compiles_the_racy_program() {
    let (p, bind, _) = racy_program();
    let exe = Compiler::new().checks(false).compile(&p, &bind).unwrap();
    // The stage was skipped entirely: no diagnostics attached.
    assert!(exe.diagnostics.diagnostics.is_empty());
}

#[test]
fn all_shipped_workloads_are_error_free() {
    for e in catalog() {
        // Compilation itself is the assertion: the analyzer runs as a
        // pipeline stage and aborts on any Error-severity finding.
        let exe = Compiler::new()
            .compile(&e.program, &e.bindings)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name()));
        assert!(
            !exe.diagnostics.has_errors(),
            "{}: error-severity diagnostics attached",
            e.name()
        );
        for v in &exe.diagnostics.arrays {
            assert_ne!(
                v.race_free,
                Verdict::Refuted,
                "{}: array `{}` refuted race-free",
                e.name(),
                v.name
            );
            assert_ne!(
                v.in_bounds,
                Verdict::Refuted,
                "{}: array `{}` refuted in-bounds",
                e.name(),
                v.name
            );
        }
    }
}

#[test]
fn known_unknowns_stay_warnings() {
    // QPSCD's HogWild scatter and BFS's benign duplicate frontier writes
    // are intentionally unprovable: the analyzer must keep them at Warn
    // (MD002), never promote them to errors.
    let mut seen = 0;
    for e in catalog() {
        if e.name() != "qpscd_epoch" && e.name() != "bfs_step" {
            continue;
        }
        seen += 1;
        let exe = Compiler::new().compile(&e.program, &e.bindings).unwrap();
        let warns: Vec<_> = exe
            .diagnostics
            .diagnostics
            .iter()
            .filter(|d| d.code == multidim::Code::MAYBE_RACE)
            .collect();
        assert!(!warns.is_empty(), "{}: expected MD002", e.name());
        assert!(warns.iter().all(|d| d.severity == Severity::Warn));
    }
    assert_eq!(seen, 2, "catalog must ship qpscd_epoch and bfs_step");
}

#[test]
fn analyzer_verdicts_appear_in_traces() {
    let mut b = ProgramBuilder::new("scale");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| b.read(x, &[i.into()]) * Expr::lit(2.0));
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 256);

    let sink = Rc::new(trace::MemorySink::new());
    let guard = trace::set_sink(sink.clone());
    let exe = Compiler::new().compile(&p, &bind).unwrap();
    drop(guard);
    let events = sink.drain();

    // The static-analysis phase is a span on the pipeline lane...
    assert!(
        events
            .iter()
            .any(|e| e.cat == "analyze" && e.name == "static_analysis"),
        "missing the static_analysis span"
    );
    // ...and each array's verdict is an instant event.
    let verdicts: Vec<&trace::Event> = events
        .iter()
        .filter(|e| e.cat == "analyze" && e.name == "verdict")
        .collect();
    assert_eq!(verdicts.len(), p.arrays.len());
    for v in &verdicts {
        assert_eq!(v.get_str("race_free"), Some("proven"));
        assert_eq!(v.get_str("in_bounds"), Some("proven"));
    }
    assert_eq!(exe.diagnostics.race_free(x), Verdict::Proven);

    // A warning-producing program additionally traces its diagnostics.
    let (rp, rbind, _) = racy_program();
    let sink = Rc::new(trace::MemorySink::new());
    let guard = trace::set_sink(sink.clone());
    let _ = Compiler::new().checks(false).compile(&rp, &rbind).unwrap();
    drop(guard);
    // checks(false) emits nothing — the stage never ran.
    assert!(!sink.drain().iter().any(|e| e.cat == "analyze"));
}

#[test]
fn kernel_defects_render_as_md008() {
    use multidim_codegen::KernelError;
    let d = multidim::kernel_defect(&KernelError("boom".into()));
    assert_eq!(d.code, multidim::Code::KERNEL_DEFECT);
    assert!(d.render_line().starts_with("MD008 error"));
}

#[test]
fn explicit_mapping_split_reduce_warns_md005() {
    let mut b = ProgramBuilder::new("sum");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.reduce(Size::sym(n), ReduceOp::Add, |b, i| b.read(x, &[i.into()]));
    let p = b.finish_reduce(root, "s", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 4096);

    let m = MappingDecision::new(vec![multidim_mapping::LevelMapping {
        dim: Dim::X,
        block_size: 256,
        span: Span::Split(4),
    }]);
    let exe = Compiler::new().compile_with_mapping(&p, &bind, m).unwrap();
    let split_warns: Vec<_> = exe
        .diagnostics
        .diagnostics
        .iter()
        .filter(|d| d.code == multidim::Code::SPLIT_NONDET)
        .collect();
    assert_eq!(split_warns.len(), 1);
    assert_eq!(split_warns[0].severity, Severity::Warn);

    // The split mapping still runs and still sums correctly.
    let inputs: HashMap<_, _> = [(x, vec![1.0; 4096])].into_iter().collect();
    let run = exe.run(&inputs).unwrap();
    let out = &run.outputs[&p.output.unwrap()];
    assert!((out[0] - 4096.0).abs() < 1e-6);
}
