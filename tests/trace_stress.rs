//! Concurrency stress for the process-wide trace sink and the metrics
//! registry: eight engine shards hammered by eight client threads, every
//! span funneling into one shared store. This suite lives in its own
//! test binary so the process-global store sees no traffic from
//! unrelated tests and the sampler accounting can be asserted exactly.

use multidim::Compiler;
use multidim_engine::{EngineConfig, Request};
use multidim_serve::{FrontDoor, FrontDoorConfig, QuotaPolicy};
use multidim_trace::{install_store, TailSamplerConfig, TraceOutcome, TraceStore};
use multidim_workloads::catalog::catalog;
use std::collections::HashSet;
use std::sync::Arc;

const SHARDS: usize = 8;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 12;
const TOTAL: usize = CLIENTS * PER_CLIENT;

#[test]
fn eight_clients_on_eight_shards_lose_and_duplicate_no_spans() {
    // `latency_threshold: 0.0` marks every completion slow, so the tail
    // sampler keeps all of them — any missing trace below is a lost
    // span, not a sampling decision.
    let store = Arc::new(TraceStore::new(TailSamplerConfig {
        latency_threshold: 0.0,
        capacity: 16_384,
        ..TailSamplerConfig::default()
    }));
    let _guard = install_store(store.clone());

    let entries = catalog();
    let door = FrontDoor::new(
        Compiler::new(),
        FrontDoorConfig {
            shards: SHARDS,
            shard: EngineConfig {
                workers: 1,
                queue_capacity: 64,
                ..EngineConfig::default()
            },
            quota: QuotaPolicy::default(),
            ..FrontDoorConfig::default()
        },
    );

    // Closed-loop clients, each under its own tenant, round-robining the
    // catalog from a per-client offset so shards see interleaved traffic.
    let ids: Vec<u128> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let door = &door;
                let entries = &entries;
                s.spawn(move || {
                    let tenant = format!("tenant-{client}");
                    (0..PER_CLIENT)
                        .map(|i| {
                            let e = &entries[(client + i) % entries.len()];
                            let served = door
                                .submit(
                                    &tenant,
                                    Request::new(
                                        e.program.clone(),
                                        e.bindings.clone(),
                                        e.inputs.clone(),
                                    ),
                                )
                                .expect("admitted")
                                .wait()
                                .expect("served");
                            served.response.trace.expect("door mints a trace").trace_id
                        })
                        .collect::<Vec<u128>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client panicked"))
            .collect()
    });

    assert_eq!(ids.len(), TOTAL);
    let distinct: HashSet<u128> = ids.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        TOTAL,
        "duplicated trace ids under contention"
    );

    // Exact sampler accounting: this binary is the store's only traffic.
    let stats = store.stats();
    assert_eq!(stats.started, TOTAL as u64, "{stats:?}");
    assert_eq!(stats.finished, TOTAL as u64, "{stats:?}");
    assert_eq!(
        stats.kept, TOTAL as u64,
        "lost traces under contention: {stats:?}"
    );
    assert_eq!(stats.kept + stats.dropped_sampled, stats.finished);
    assert_eq!(stats.spans_dropped, 0, "span records lost under contention");

    // Every kept trace is a complete, well-formed tree: exactly one
    // root, unique span ids, every child stitched to that root, and the
    // shard's queue span present — no span leaked into the wrong trace
    // even though eight workers recorded into the store concurrently.
    for id in &distinct {
        let stored = store.lookup(*id).expect("kept trace resolves");
        assert_eq!(stored.outcome, TraceOutcome::Completed);
        let mut span_ids = HashSet::new();
        for span in &stored.spans {
            assert!(
                span_ids.insert(span.span_id),
                "duplicate span id in {stored:?}"
            );
        }
        let roots: Vec<_> = stored.spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 1, "one root per trace: {:?}", stored.spans);
        let root = roots[0];
        assert_eq!((root.cat, root.name), ("serve", "request"));
        for span in &stored.spans {
            if span.span_id != root.span_id {
                assert_eq!(span.parent, Some(root.span_id));
            }
        }
        assert!(
            stored.spans.iter().any(|s| s.name == "queue"),
            "missing shard queue span in {:?}",
            stored.spans
        );
    }

    // The exposition is merge-order independent: rendering is a pure
    // function of recorded state, so two renders agree with each other
    // and the per-tenant counters agree with what each client submitted,
    // regardless of which shard won which race.
    let first = door.render_metrics();
    let second = door.render_metrics();
    assert_eq!(first, second, "exposition depends on iteration order");
    assert!(
        first.contains(&format!("serve_completed_total {TOTAL}")),
        "{first}"
    );
    for client in 0..CLIENTS {
        assert!(
            first.contains(&format!(
                "serve_tenant_requests{{tenant=\"tenant-{client}\"}} {PER_CLIENT}"
            )),
            "tenant-{client} lost requests in:\n{first}"
        );
    }
    door.shutdown();
}
