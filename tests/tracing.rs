//! End-to-end checks for the tracing/metrics layer: traced counters must
//! agree with the simulator's own result, the metrics JSON must round-trip
//! losslessly, and the exported trace must be valid Chrome trace-event JSON.

use multidim::prelude::*;
use multidim_trace as trace;
use multidim_trace::json::Json;
use std::collections::HashMap;
use std::rc::Rc;

fn sum_rows(r: i64, c: i64) -> (Program, Bindings, multidim_ir::ArrayId) {
    let mut b = ProgramBuilder::new("sumRows");
    let rs = b.sym("R");
    let cs = b.sym("C");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
    let root = b.map(Size::sym(rs), |b, row| {
        b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
            b.read(m, &[row.into(), col.into()])
        })
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(rs, r);
    bind.bind(cs, c);
    (p, bind, m)
}

fn traced_run(r: i64, c: i64) -> (multidim::Executable, multidim::RunReport, Vec<trace::Event>) {
    let (p, bind, m) = sum_rows(r, c);
    let inputs: HashMap<_, _> = [(m, (0..r * c).map(|x| (x % 5) as f64).collect::<Vec<_>>())]
        .into_iter()
        .collect();
    let sink = Rc::new(trace::MemorySink::new());
    let guard = trace::set_sink(sink.clone());
    let exe = Compiler::new().compile(&p, &bind).unwrap();
    let run = exe.run(&inputs).unwrap();
    drop(guard);
    (exe, run, sink.drain())
}

/// Per-kernel counters in the trace must sum to the simulator's totals —
/// checked across several shapes (single- and multi-kernel splits).
#[test]
fn traced_counters_sum_to_sim_totals() {
    for (r, c) in [(64, 128), (512, 256), (16, 4096), (1024, 32)] {
        let (_exe, run, events) = traced_run(r, c);
        let slices: Vec<&trace::Event> = events
            .iter()
            .filter(|e| e.cat == "sim" && e.phase == trace::Phase::Complete)
            .collect();
        assert_eq!(
            slices.len(),
            run.kernel_costs.len(),
            "[{r},{c}] one slice per kernel"
        );

        for key in [
            "warp_instr",
            "mem_requests",
            "transactions",
            "dram_bytes",
            "smem_accesses",
            "smem_conflicts",
            "syncs",
            "mallocs",
            "atomic_serial",
        ] {
            let traced: u64 = slices.iter().map(|e| e.get_u64(key).unwrap()).sum();
            let live: u64 = match key {
                "warp_instr" => run.kernel_costs.iter().map(|k| k.warp_instr).sum(),
                "mem_requests" => run.kernel_costs.iter().map(|k| k.mem_requests).sum(),
                "transactions" => run.kernel_costs.iter().map(|k| k.transactions).sum(),
                "dram_bytes" => run.kernel_costs.iter().map(|k| k.dram_bytes).sum(),
                "smem_accesses" => run.kernel_costs.iter().map(|k| k.smem_accesses).sum(),
                "smem_conflicts" => run.kernel_costs.iter().map(|k| k.smem_conflicts).sum(),
                "syncs" => run.kernel_costs.iter().map(|k| k.syncs).sum(),
                "mallocs" => run.kernel_costs.iter().map(|k| k.mallocs).sum(),
                "atomic_serial" => run.kernel_costs.iter().map(|k| k.atomic_serial).sum(),
                _ => unreachable!(),
            };
            assert_eq!(traced, live, "[{r},{c}] counter {key}");
        }

        // Slice durations cover the whole simulated run.
        let dur_total: f64 = slices.iter().map(|e| e.dur_us).sum();
        assert!(
            (dur_total - run.gpu_seconds * 1e6).abs() <= 1e-9 * run.gpu_seconds.max(1.0) * 1e6,
            "[{r},{c}] slice durations {dur_total} vs total {}",
            run.gpu_seconds * 1e6
        );
    }
}

/// The metrics JSON must round-trip losslessly and match the live run.
#[test]
fn metrics_round_trip_matches_live_run() {
    let (exe, run, _events) = traced_run(256, 512);
    let metrics = exe.metrics(&run);

    // Values mirror the live RunReport exactly.
    assert_eq!(metrics.total_seconds, run.gpu_seconds);
    assert_eq!(metrics.kernels.len(), run.kernel_costs.len());
    for (i, k) in metrics.kernels.iter().enumerate() {
        assert_eq!(k.name, run.kernel_names[i]);
        assert_eq!(k.shape, run.kernel_shapes[i]);
        assert_eq!(k.cost, run.kernel_costs[i]);
        assert_eq!(k.time, run.kernel_times[i]);
    }

    // JSON round-trip is lossless, including every f64.
    let back = multidim_sim::RunMetrics::parse(&metrics.render()).unwrap();
    assert_eq!(back, metrics);
}

/// The exported trace must be valid Chrome trace-event JSON: an object with
/// a `traceEvents` array whose entries carry name/ph/ts/pid/tid, with `dur`
/// on complete events.
#[test]
fn exported_trace_is_valid_chrome_json() {
    let (_exe, _run, events) = traced_run(128, 256);
    assert!(!events.is_empty());

    let mut out = Vec::new();
    trace::chrome::write_trace(&events, &mut out).unwrap();
    let doc = Json::parse(std::str::from_utf8(&out).unwrap()).unwrap();

    let list = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    // Both clock lanes are labeled, and every event is well-formed.
    let mut phases = Vec::new();
    for e in list {
        assert!(
            e.get("name").and_then(Json::as_str).is_some(),
            "{}",
            e.render()
        );
        let ph = e.get("ph").and_then(Json::as_str).expect("ph").to_string();
        assert!(e.get("ts").and_then(Json::as_f64).is_some() || ph == "M");
        assert!(e.get("pid").and_then(Json::as_u64).is_some());
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
        if ph == "X" {
            assert!(e.get("dur").and_then(Json::as_f64).is_some(), "X needs dur");
        }
        phases.push(ph);
    }
    for needed in ["M", "X", "i"] {
        assert!(phases.iter().any(|p| p == needed), "missing phase {needed}");
    }
    // The pipeline lane and the simulated lane are both populated.
    let pids: Vec<u64> = list
        .iter()
        .filter_map(|e| e.get("pid").and_then(Json::as_u64))
        .collect();
    assert!(pids.contains(&u64::from(trace::PID_PIPELINE)));
    assert!(pids.contains(&u64::from(trace::PID_SIM)));
}

/// Without a sink the pipeline emits nothing and produces identical results.
#[test]
fn untraced_run_matches_traced_run() {
    let (p, bind, m) = sum_rows(128, 64);
    let inputs: HashMap<_, _> = [(m, vec![1.0; 128 * 64])].into_iter().collect();

    assert!(!trace::enabled());
    let exe = Compiler::new().compile(&p, &bind).unwrap();
    let quiet = exe.run(&inputs).unwrap();

    let (_exe, traced, events) = traced_run(128, 64);
    assert!(!events.is_empty());
    assert_eq!(quiet.gpu_seconds, traced.gpu_seconds);
    assert_eq!(quiet.kernel_costs, traced.kernel_costs);
}
