//! Cross-validation: every mapping strategy and every codegen option must
//! compute the same results (performance differs; semantics don't).

use multidim::prelude::*;
use multidim_ir::{ArrayId, ReduceOp};
use std::collections::HashMap;

/// sumWeightedCols-style program with a materialized temporary.
fn weighted(fusion: bool) -> (Program, Bindings, HashMap<ArrayId, Vec<f64>>) {
    let mut b = ProgramBuilder::new("weighted");
    let r = b.sym("R");
    let c = b.sym("C");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
    let v = b.input("v", ScalarKind::F32, &[Size::sym(r)]);
    let root = b.map(Size::sym(c), |b, col| {
        let temp = b.map(Size::sym(r), |b, row| {
            b.read(m, &[row.into(), col.into()]) * b.read(v, &[row.into()])
        });
        b.let_(temp, |b, t| {
            b.reduce(Size::sym(r), ReduceOp::Add, |b, j| {
                b.read_var(t, &[j.into()])
            })
        })
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(r, 53);
    bind.bind(c, 41);
    let inputs: HashMap<_, _> = [
        (
            m,
            (0..53 * 41)
                .map(|x| ((x * 7) % 11) as f64)
                .collect::<Vec<_>>(),
        ),
        (v, (0..53).map(|x| 1.0 + (x % 3) as f64).collect::<Vec<_>>()),
    ]
    .into_iter()
    .collect();
    let _ = fusion;
    (p, bind, inputs)
}

fn run_with(compiler: Compiler) -> Vec<f64> {
    let (p, bind, inputs) = weighted(true);
    let exe = compiler.compile(&p, &bind).expect("compile");
    let report = exe.run(&inputs).expect("run");
    report.output(p.output.unwrap()).to_vec()
}

#[test]
fn all_strategies_agree() {
    let base = run_with(Compiler::new());
    for s in [
        Strategy::OneD,
        Strategy::ThreadBlockThread,
        Strategy::WarpBased,
    ] {
        let got = run_with(Compiler::new().strategy(s));
        for (i, (g, w)) in got.iter().zip(&base).enumerate() {
            assert!(
                (g - w).abs() < 1e-9 * w.abs().max(1.0),
                "{s}[{i}]: {g} vs {w}"
            );
        }
    }
}

#[test]
fn fusion_on_off_agree() {
    let fused = run_with(Compiler::new().fusion(true));
    let unfused = run_with(Compiler::new().fusion(false));
    assert_eq!(fused.len(), unfused.len());
    for (g, w) in fused.iter().zip(&unfused) {
        assert!((g - w).abs() < 1e-9 * w.abs().max(1.0));
    }
}

#[test]
fn all_layout_policies_agree() {
    let base = run_with(Compiler::new().fusion(false));
    for layout in [
        LayoutPolicy::Auto,
        LayoutPolicy::ForceRowMajor,
        LayoutPolicy::ForceColMajor,
    ] {
        let opts = CodegenOptions {
            layout,
            ..CodegenOptions::default()
        };
        let got = run_with(Compiler::new().fusion(false).options(opts));
        for (g, w) in got.iter().zip(&base) {
            assert!((g - w).abs() < 1e-9 * w.abs().max(1.0), "{layout:?}");
        }
    }
}

#[test]
fn malloc_modeling_does_not_change_results() {
    let base = run_with(Compiler::new().fusion(false));
    let opts = CodegenOptions {
        device_malloc: true,
        ..CodegenOptions::default()
    };
    let got = run_with(Compiler::new().fusion(false).options(opts));
    assert_eq!(base, got);
}

#[test]
fn smem_prefetch_on_off_agree() {
    // Imperfect nest: outer-level read feeds an inner reduce.
    let build = || {
        let mut b = ProgramBuilder::new("imperfect");
        let n = b.sym("N");
        let m = b.sym("M");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
        let y = b.input("y", ScalarKind::F32, &[Size::sym(m)]);
        let root = b.map(Size::sym(n), |b, i| {
            let xi = b.read(x, &[i.into()]);
            b.let_(xi, |b, a| {
                b.reduce(Size::sym(m), ReduceOp::Add, |b, j| {
                    Expr::var(a) * b.read(y, &[j.into()])
                })
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 200);
        bind.bind(m, 67);
        let inputs: HashMap<_, _> = [
            (x, (0..200).map(|v| v as f64 / 3.0).collect::<Vec<_>>()),
            (y, (0..67).map(|v| (v % 5) as f64).collect::<Vec<_>>()),
        ]
        .into_iter()
        .collect();
        (p, bind, inputs)
    };
    let mut results = Vec::new();
    for prefetch in [true, false] {
        let (p, bind, inputs) = build();
        let opts = CodegenOptions {
            smem_prefetch: prefetch,
            ..CodegenOptions::default()
        };
        let exe = Compiler::new().options(opts).compile(&p, &bind).unwrap();
        let report = exe.run(&inputs).unwrap();
        results.push(report.output(p.output.unwrap()).to_vec());
    }
    for (g, w) in results[0].iter().zip(&results[1]) {
        assert!((g - w).abs() < 1e-9 * w.abs().max(1.0));
    }
}

#[test]
fn explicit_mappings_sweep_agrees() {
    use multidim_mapping::{enumerate_scored, Weights};
    let (p, bind, inputs) = weighted(true);
    let gpu = GpuSpec::tesla_k20c();
    let candidates = enumerate_scored(&p, &bind, &gpu, &Weights::default());
    let want = multidim_ir::interpret(&p, &bind, &inputs).unwrap();
    let expect = &want.array(p.output.unwrap()).data;
    let compiler = Compiler::new();
    let mut checked = 0;
    // Sample the space (every 7th candidate) to keep the test quick.
    for cand in candidates.iter().step_by(7) {
        let Ok(exe) = compiler.compile_with_mapping(&p, &bind, cand.mapping.clone()) else {
            continue;
        };
        let report = exe.run(&inputs).expect("run");
        let got = report.output(p.output.unwrap());
        for (i, (g, w)) in got.iter().zip(expect).enumerate() {
            assert!(
                (g - w).abs() < 1e-6 * w.abs().max(1.0),
                "{} [{i}]: {g} vs {w}",
                cand.mapping
            );
        }
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} candidates were executable");
}
