//! Locality-analysis validation: the static coalescing / bank-conflict /
//! transaction proofs must agree with what the simulator actually measures,
//! and the proof-driven search pruning must never change the selected
//! mapping.

use multidim::prelude::*;
use multidim::{locality_cross_check, AccessClass};
use multidim_codegen::CodegenOptions;
use multidim_ir::ArrayId;
use multidim_mapping::{Dim, LevelMapping, MappingDecision, Span, TuneOptions};
use multidim_workloads::catalog::catalog;
use std::collections::HashMap;

/// Property over the whole catalog: every Proven coalescing verdict and
/// every proven bank-conflict bound must be consistent with the simulator's
/// measured memory counters — zero disagreements allowed.
#[test]
fn catalog_locality_agrees_with_simulator() {
    for e in catalog() {
        let exe = Compiler::new()
            .compile(&e.program, &e.bindings)
            .unwrap_or_else(|err| panic!("{}: compile failed: {err}", e.name()));
        let summary = exe
            .locality
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no locality summary", e.name()));
        let sim = multidim_sim::run_program(&exe.kernels, exe.device(), &e.bindings, &e.inputs)
            .unwrap_or_else(|err| panic!("{}: simulation failed: {err:?}", e.name()));
        let disagreements = locality_cross_check(summary, &sim);
        assert!(
            disagreements.is_empty(),
            "{}: static locality proofs disagree with the simulator:\n  {}",
            e.name(),
            disagreements.join("\n  ")
        );
    }
}

/// The pruned search must select a bit-identical mapping (and cost) to the
/// exhaustive one on every catalog workload, while actually pruning on a
/// meaningful fraction of them.
#[test]
fn pruned_search_is_bit_identical_and_prunes() {
    let pruning = Compiler::new().checks(false);
    let exhaustive = Compiler::new().checks(false).prune(false);
    let opts = TuneOptions::default();
    let mut workloads_with_pruning = 0usize;
    for e in catalog() {
        let (_, fast) = pruning
            .autotune(&e.program, &e.bindings, &e.inputs, &opts)
            .unwrap_or_else(|err| panic!("{}: pruned autotune failed: {err}", e.name()));
        let (_, full) = exhaustive
            .autotune(&e.program, &e.bindings, &e.inputs, &opts)
            .unwrap_or_else(|err| panic!("{}: full autotune failed: {err}", e.name()));
        assert_eq!(
            fast.best,
            full.best,
            "{}: pruning changed the selected mapping",
            e.name()
        );
        assert!(
            fast.best_cost == full.best_cost,
            "{}: pruning changed the winning cost: {} vs {}",
            e.name(),
            fast.best_cost,
            full.best_cost
        );
        assert!(
            fast.measured.len() + fast.pruned + fast.skipped == full.measured.len() + full.skipped,
            "{}: pruning changed the evaluated-candidate count",
            e.name()
        );
        assert_eq!(
            full.pruned,
            0,
            "{}: unpruned search reported pruning",
            e.name()
        );
        if fast.pruned > 0 {
            workloads_with_pruning += 1;
        }
    }
    assert!(
        workloads_with_pruning >= 5,
        "pruning fired on only {workloads_with_pruning} workload(s); expected >= 5"
    );
}

/// A one-level map over `n` elements reading `a[stride * i]`, every level
/// mapped to `x` with `block`-wide blocks.
fn strided_fixture(
    stride: i64,
    n: i64,
    block: u32,
) -> (
    Program,
    Bindings,
    MappingDecision,
    HashMap<ArrayId, Vec<f64>>,
) {
    let mut b = ProgramBuilder::new("strided");
    let ns = b.sym("N");
    let a = b.input("a", ScalarKind::F32, &[Size::sym(ns) * Size::from(stride)]);
    let root = b.map(Size::sym(ns), |b, i| {
        b.read(a, &[Expr::var(i) * Expr::int(stride)])
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(ns, n);
    let mapping = MappingDecision::new(vec![LevelMapping {
        dim: Dim::X,
        block_size: block,
        span: Span::ONE,
    }]);
    let inputs = HashMap::from([(a, vec![1.0; (n * stride) as usize])]);
    (p, bind, mapping, inputs)
}

/// Total measured global-memory transactions of one simulated run.
fn measured_tx(exe: &Executable, bind: &Bindings, inputs: &HashMap<ArrayId, Vec<f64>>) -> u64 {
    let sim = multidim_sim::run_program(&exe.kernels, exe.device(), bind, inputs).unwrap();
    sim.costs.iter().map(|c| c.transactions).sum()
}

/// `a[2i]` under an all-x mapping: provably strided(2), and the proven
/// transaction floor is *exact* — it equals what the simulator measures
/// (64 load transactions: each 32-lane warp spans two aligned 128-byte
/// segments; plus 32 coalesced store transactions).
#[test]
fn strided_2_fixture_exact() {
    let (p, bind, mapping, inputs) = strided_fixture(2, 1024, 128);
    let exe = Compiler::new()
        .compile_with_mapping(&p, &bind, mapping)
        .unwrap();
    let summary = exe.locality.as_ref().unwrap();
    let load = summary
        .accesses
        .iter()
        .find(|a| a.array == "a" && !a.is_write)
        .unwrap();
    assert_eq!(load.class, AccessClass::Strided(2));
    assert_eq!(load.verdict, multidim::Verdict::Proven);
    assert_eq!(load.transactions_lb, 64);
    assert_eq!(summary.tx_lower_bound, 64 + 32);
    assert_eq!(measured_tx(&exe, &bind, &inputs), 64 + 32);
}

/// `a[32i]` (f32: a 128-byte stride) under an all-x mapping: every lane
/// lands in its own segment, so the floor is one transaction per element.
#[test]
fn strided_32_fixture_exact() {
    let (p, bind, mapping, inputs) = strided_fixture(32, 1024, 128);
    let exe = Compiler::new()
        .compile_with_mapping(&p, &bind, mapping)
        .unwrap();
    let summary = exe.locality.as_ref().unwrap();
    let load = summary
        .accesses
        .iter()
        .find(|a| a.array == "a" && !a.is_write)
        .unwrap();
    assert_eq!(load.class, AccessClass::Strided(32));
    assert_eq!(load.transactions_lb, 1024);
    assert_eq!(summary.tx_lower_bound, 1024 + 32);
    assert_eq!(measured_tx(&exe, &bind, &inputs), 1024 + 32);
}

/// A two-level nest reading only the *outer* index while the inner level
/// owns `x`: provably broadcast — one transaction per warp.
#[test]
fn broadcast_fixture_exact() {
    let mut b = ProgramBuilder::new("broadcast");
    let ns = b.sym("N");
    let ms = b.sym("M");
    let a = b.input("a", ScalarKind::F32, &[Size::sym(ns)]);
    let root = b.map(Size::sym(ns), |b, i| {
        b.map(Size::sym(ms), |b2, _j| b2.read(a, &[Expr::var(i)]))
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(ns, 32);
    bind.bind(ms, 64);
    let mapping = MappingDecision::new(vec![
        LevelMapping {
            dim: Dim::Y,
            block_size: 4,
            span: Span::ONE,
        },
        LevelMapping {
            dim: Dim::X,
            block_size: 64,
            span: Span::ONE,
        },
    ]);
    // Disable shared-memory prefetch so the broadcast load really goes to
    // global memory and the exact-count comparison below is meaningful.
    let exe = Compiler::new()
        .options(CodegenOptions {
            smem_prefetch: false,
            ..CodegenOptions::default()
        })
        .compile_with_mapping(&p, &bind, mapping)
        .unwrap();
    let summary = exe.locality.as_ref().unwrap();
    let load = summary
        .accesses
        .iter()
        .find(|acc| acc.array == "a" && !acc.is_write)
        .unwrap();
    assert_eq!(load.class, AccessClass::Broadcast);
    assert_eq!(load.verdict, multidim::Verdict::Proven);
    // 2048 threads / 32 lanes = 64 warps; one transaction each for the
    // broadcast load and one for the coalesced store.
    assert_eq!(load.transactions_lb, 64);
    assert_eq!(summary.tx_lower_bound, 64 + 64);
    let inputs = HashMap::from([(a, vec![1.0; 32])]);
    assert_eq!(measured_tx(&exe, &bind, &inputs), 64 + 64);
}

/// `a[idx[i]]`: the address is data-dependent, so coalescing is provably
/// unprovable (scattered) and the analysis falls back to the universal
/// one-transaction-per-warp floor, which the simulator must still respect.
#[test]
fn scattered_fixture_sound() {
    let mut b = ProgramBuilder::new("scattered");
    let ns = b.sym("N");
    let idx = b.input("idx", ScalarKind::F32, &[Size::sym(ns)]);
    let a = b.input("a", ScalarKind::F32, &[Size::sym(ns)]);
    let root = b.map(Size::sym(ns), |b, i| {
        let w = b.read(idx, &[Expr::var(i)]);
        b.read(a, std::slice::from_ref(&w))
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(ns, 1024);
    let mapping = MappingDecision::new(vec![LevelMapping {
        dim: Dim::X,
        block_size: 128,
        span: Span::ONE,
    }]);
    let exe = Compiler::new()
        .compile_with_mapping(&p, &bind, mapping)
        .unwrap();
    let summary = exe.locality.as_ref().unwrap();
    let load = summary
        .accesses
        .iter()
        .find(|acc| acc.array == "a" && !acc.is_write)
        .unwrap();
    assert_eq!(load.class, AccessClass::Scattered);
    assert_eq!(load.verdict, multidim::Verdict::Proven);
    // Universal floor: ceil(1024 / 32) for the scattered load.
    assert_eq!(load.transactions_lb, 32);
    // Identity permutation: the measured counters must sit at or above the
    // floor and the cross-check must find no disagreement.
    let inputs = HashMap::from([
        (idx, (0..1024).map(f64::from).collect::<Vec<_>>()),
        (a, vec![1.0; 1024]),
    ]);
    let sim = multidim_sim::run_program(&exe.kernels, exe.device(), &bind, &inputs).unwrap();
    let measured: u64 = sim.costs.iter().map(|c| c.transactions).sum();
    assert!(measured >= summary.tx_lower_bound);
    assert!(locality_cross_check(summary, &sim).is_empty());
}
