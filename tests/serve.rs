//! Integration tests for the sharded serving tier: routing determinism
//! across front-door restarts, rendezvous reshuffle on fleet growth,
//! quota accounting against hand-computed token-bucket fixtures,
//! fleet-wide single-flight during cold compiles, spill on home-shard
//! backpressure, the shared tuning store as a warm tier, and the
//! per-shard/per-tenant observability surface.

use multidim::Compiler;
use multidim_engine::{EngineConfig, Request};
use multidim_serve::{FrontDoor, FrontDoorConfig, QuotaPolicy, Router, ServeError, TenantQuota};
use multidim_workloads::catalog::catalog;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn request_for(entry: &multidim_workloads::catalog::CatalogEntry) -> Request {
    Request::new(
        entry.program.clone(),
        entry.bindings.clone(),
        entry.inputs.clone(),
    )
}

fn door_with(shards: usize, shard: EngineConfig, quota: QuotaPolicy) -> FrontDoor {
    FrontDoor::new(
        Compiler::new(),
        FrontDoorConfig {
            shards,
            shard,
            quota,
            ..FrontDoorConfig::default()
        },
    )
}

#[test]
fn routing_is_deterministic_across_restarts() {
    let entries = catalog();
    let first = door_with(4, EngineConfig::default(), QuotaPolicy::default());
    let homes: Vec<usize> = entries
        .iter()
        .map(|e| first.home_shard(first.fingerprint_of(&e.program, &e.bindings)))
        .collect();
    drop(first);

    // A brand-new front door (a "restarted" process) routes every
    // program to the same shard: routing is a pure function of the
    // fingerprint, with no retained state.
    let second = door_with(4, EngineConfig::default(), QuotaPolicy::default());
    for (e, &home) in entries.iter().zip(&homes) {
        assert_eq!(
            second.home_shard(second.fingerprint_of(&e.program, &e.bindings)),
            home,
            "{} moved shards across restart",
            e.name()
        );
    }
    // And the catalog spreads across shards rather than piling up on one.
    let distinct: std::collections::BTreeSet<usize> = homes.iter().copied().collect();
    assert!(distinct.len() > 1, "all programs routed to one shard");
}

#[test]
fn fleet_growth_reshuffles_only_onto_the_new_shard() {
    let entries = catalog();
    let compiler = Compiler::new();
    let before = Router::new(4);
    let after = Router::new(5);
    for e in &entries {
        let fp = compiler.fingerprint(&e.program, &e.bindings);
        let (old, new) = (before.route(fp), after.route(fp));
        if old != new {
            assert_eq!(new, 4, "{} reshuffled between surviving shards", e.name());
        }
    }
}

#[test]
fn quota_accounting_matches_token_bucket_fixture() {
    // Hand-computed fixture: burst 3, zero refill — each tenant gets
    // exactly 3 admissions ever, no spare capacity.
    let entries = catalog();
    let door = door_with(
        2,
        EngineConfig::default(),
        QuotaPolicy::per_tenant(0.0, 3.0),
    );
    for tenant in ["alpha", "beta"] {
        let mut admitted = 0usize;
        let mut rejected = 0usize;
        for _ in 0..5 {
            match door.submit(tenant, request_for(&entries[0])) {
                Ok(ticket) => {
                    admitted += 1;
                    ticket.wait().expect("served");
                }
                Err(ServeError::QuotaExceeded {
                    tenant: t,
                    retry_after,
                }) => {
                    assert_eq!(t, tenant);
                    // Zero refill rate: the hint is the clamp, not 0.
                    assert!(retry_after > Duration::ZERO);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
        assert_eq!((admitted, rejected), (3, 2), "tenant {tenant}");
    }
    let stats = door.stats();
    assert_eq!(stats.quota_rejected, 4);
    assert_eq!(stats.completed, 6);

    // Per-tenant accounting reached the SLO trackers too: 5 decisions
    // each, 3 successes.
    for tenant in ["alpha", "beta"] {
        let status = door.slo_status(tenant).expect("tenant tracked");
        assert_eq!(status.samples, 5, "tenant {tenant}");
        assert_eq!(status.errors, 2, "tenant {tenant}");
    }
    door.shutdown();
}

#[test]
fn spare_bucket_is_shared_after_guarantees_exhaust() {
    // Guarantee 1 per tenant, spare burst 2: four submissions from two
    // tenants all admit; the fifth (either tenant) rejects.
    let entries = catalog();
    let door = door_with(
        2,
        EngineConfig::default(),
        QuotaPolicy::per_tenant(0.0, 1.0).with_spare(TenantQuota::new(0.0, 2.0)),
    );
    let mut admitted = 0usize;
    for tenant in ["a", "b", "a", "b"] {
        let ticket = door
            .submit(tenant, request_for(&entries[0]))
            .expect("admitted from own or spare budget");
        ticket.wait().expect("served");
        admitted += 1;
    }
    assert_eq!(admitted, 4);
    assert!(matches!(
        door.submit("a", request_for(&entries[0])),
        Err(ServeError::QuotaExceeded { .. })
    ));
    door.shutdown();
}

#[test]
fn cold_compile_is_single_flight_across_the_fleet() {
    // K concurrent clients submit the identical cold program. The
    // front-door coalescing table steers every submission to one shard,
    // whose cache single-flights them onto one compile: exactly one
    // cache miss fleet-wide.
    const K: usize = 8;
    let entries = catalog();
    let door = door_with(
        4,
        EngineConfig {
            workers: 4,
            queue_capacity: 64,
            ..EngineConfig::default()
        },
        QuotaPolicy::default(),
    );
    let coalesced_submissions = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for client in 0..K {
            let door = &door;
            let entry = &entries[3];
            let coalesced_submissions = &coalesced_submissions;
            s.spawn(move || {
                let ticket = door
                    .submit(&format!("tenant-{client}"), request_for(entry))
                    .expect("admitted");
                if ticket.coalesced {
                    coalesced_submissions.fetch_add(1, Ordering::Relaxed);
                }
                ticket.wait().expect("served");
            });
        }
    });
    let fleet_misses: u64 = (0..door.shards())
        .map(|i| door.shard(i).cache_stats().misses)
        .sum();
    assert_eq!(fleet_misses, 1, "cold compile ran more than once");
    // Everyone landed on the compiling shard: all K completions came
    // from one engine.
    let serving_shards: Vec<usize> = (0..door.shards())
        .filter(|&i| door.shard(i).stats().completed > 0)
        .collect();
    assert_eq!(serving_shards.len(), 1, "requests leaked off the claim");
    assert_eq!(
        door.stats().coalesced,
        coalesced_submissions.load(Ordering::Relaxed) as u64
    );
    door.shutdown();
}

#[test]
fn home_rejection_spills_to_least_loaded_shard() {
    // Saturate the home shard's queue with slow cold compiles, then
    // watch an overflow request land on another shard.
    let entries = catalog();
    let door = door_with(
        2,
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            ..EngineConfig::default()
        },
        QuotaPolicy::default(),
    );
    // Pick several distinct programs that share a home shard so the
    // coalescing table never redirects them.
    let home0 = door.home_shard(door.fingerprint_of(&entries[0].program, &entries[0].bindings));
    let same_home: Vec<&multidim_workloads::catalog::CatalogEntry> = entries
        .iter()
        .filter(|e| door.home_shard(door.fingerprint_of(&e.program, &e.bindings)) == home0)
        .take(6)
        .collect();
    assert!(same_home.len() >= 4, "catalog too small for the fixture");

    let mut tickets = Vec::new();
    let mut spilled = 0usize;
    for e in &same_home {
        match door.submit("t", request_for(e)) {
            Ok(t) => {
                if t.spilled {
                    assert_ne!(t.shard, home0);
                    spilled += 1;
                }
                tickets.push(t);
            }
            // With both queues at capacity 1 the fixture may overflow
            // entirely; Overloaded must carry both shard ids.
            Err(ServeError::Overloaded {
                home_shard,
                spill_shard,
                ..
            }) => {
                assert_eq!(home_shard, home0);
                assert_eq!(spill_shard, Some(1 - home0));
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    for t in tickets {
        t.wait().expect("served");
    }
    assert_eq!(door.stats().spilled, spilled as u64);
    assert!(spilled > 0, "queue of one never overflowed into a spill");
    door.shutdown();
}

#[test]
fn shared_store_is_a_warm_tier_across_restarts() {
    let dir = std::env::temp_dir().join(format!("serve-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let store = dir.join("fleet-store.json");
    let entries = catalog();

    // First fleet: preload warms the hot tier, autotune writes the
    // shared store (the warm tier's contents are *tuned* mappings).
    let door = door_with(
        2,
        EngineConfig {
            store_path: Some(store.clone()),
            ..EngineConfig::default()
        },
        QuotaPolicy::default(),
    );
    let report = door.preload(entries.iter().take(6).map(request_for).collect());
    assert_eq!(report.warmed, 6);
    assert_eq!(report.failed, 0);
    assert_eq!(report.tuned, 0, "nothing tuned yet");
    door.autotune(
        &entries[0].program,
        &entries[0].bindings,
        &entries[0].inputs,
        &multidim_mapping::TuneOptions::default(),
    )
    .expect("autotune succeeds");
    door.shutdown();
    assert!(store.exists(), "shutdown should persist the shared store");

    // Second fleet, fresh hot caches: preload finds the tuned mapping
    // in the warm tier instead of re-running the search.
    let door = door_with(
        2,
        EngineConfig {
            store_path: Some(store.clone()),
            ..EngineConfig::default()
        },
        QuotaPolicy::default(),
    );
    let report = door.preload(entries.iter().take(6).map(request_for).collect());
    assert_eq!(report.warmed, 6);
    assert_eq!(
        report.tuned, 1,
        "restarted fleet should reuse the stored tuning"
    );
    // And the hot tier is now primed: a tenant request is a cache hit
    // served with the tuned mapping.
    let served = door
        .submit("t", request_for(&entries[0]))
        .expect("admitted")
        .wait()
        .expect("served");
    assert!(served.response.cache_hit, "preload left the hot tier cold");
    assert!(served.response.tuned, "tuned mapping not reused on a hit");
    door.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_expose_per_shard_gauges_and_per_tenant_counters() {
    let entries = catalog();
    let door = door_with(3, EngineConfig::default(), QuotaPolicy::default());
    for (i, tenant) in ["acme", "globex"].iter().enumerate() {
        door.submit(tenant, request_for(&entries[i]))
            .expect("admitted")
            .wait()
            .expect("served");
    }
    let text = door.render_metrics();
    assert!(
        text.contains("# TYPE serve_shard_queue_depth gauge"),
        "{text}"
    );
    for shard in 0..3 {
        assert!(
            text.contains(&format!("serve_shard_queue_depth{{shard=\"{shard}\"}}")),
            "missing shard {shard} gauge in:\n{text}"
        );
    }
    assert!(
        text.contains("serve_tenant_requests{tenant=\"acme\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("serve_tenant_requests{tenant=\"globex\"} 1"),
        "{text}"
    );
    assert!(text.contains("serve_completed_total 2"), "{text}");

    // Request profiles flow through the front door from the owning shard.
    let served = door
        .submit("acme", request_for(&entries[0]))
        .expect("admitted")
        .wait()
        .expect("served");
    let profile = door.profile(&served);
    assert_eq!(profile.program, entries[0].name());
    door.shutdown();
}

#[test]
fn spilled_request_trace_is_one_stitched_tree_with_a_spill_span() {
    use multidim_trace::{install_store, TailSamplerConfig, TraceStore};
    use std::sync::Arc;

    // Keep every finished trace deterministically; the store is
    // process-wide within this test binary, so every assertion below is
    // scoped to trace ids returned by our own tickets.
    let store = Arc::new(TraceStore::new(TailSamplerConfig {
        latency_threshold: 0.0,
        ..TailSamplerConfig::default()
    }));
    let _guard = install_store(store.clone());

    // Same saturation fixture as the spill test above: distinct programs
    // sharing a home shard, queues of one, so overflow must spill.
    let entries = catalog();
    let door = door_with(
        2,
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            ..EngineConfig::default()
        },
        QuotaPolicy::default(),
    );
    let home0 = door.home_shard(door.fingerprint_of(&entries[0].program, &entries[0].bindings));
    let same_home: Vec<&multidim_workloads::catalog::CatalogEntry> = entries
        .iter()
        .filter(|e| door.home_shard(door.fingerprint_of(&e.program, &e.bindings)) == home0)
        .take(6)
        .collect();
    assert!(same_home.len() >= 4, "catalog too small for the fixture");

    let mut tickets = Vec::new();
    for e in &same_home {
        match door.submit("t", request_for(e)) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { .. }) => {}
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    let mut spilled_traces = 0usize;
    for t in tickets {
        let served = t.wait().expect("served");
        let ctx = served
            .response
            .trace
            .expect("door mints a trace when a store is installed");
        let stored = store
            .lookup(ctx.trace_id)
            .expect("completion kept at latency_threshold 0");

        // One tree per request: the door owns the single root span, and
        // every shard-side span (queue/compile/run) plus any routing
        // span (spill) hangs directly off it — even for a spilled
        // request, whose retry clone crossed into a second engine.
        let roots: Vec<_> = stored.spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 1, "one root per trace: {:?}", stored.spans);
        let root = roots[0];
        assert_eq!((root.cat, root.name), ("serve", "request"));
        for span in &stored.spans {
            if span.span_id != root.span_id {
                assert_eq!(
                    span.parent,
                    Some(root.span_id),
                    "span `{}` not stitched under the door root",
                    span.name
                );
            }
        }
        let queue = stored
            .spans
            .iter()
            .find(|s| s.name == "queue")
            .expect("queue span");
        if served.spilled {
            spilled_traces += 1;
            let spill = stored
                .spans
                .iter()
                .find(|s| s.name == "spill")
                .expect("spilled request records a spill span");
            assert_eq!(spill.cat, "serve");
            // Full-wait attribution: the resubmission carried the
            // original admission instant, so the shard's queue span
            // starts at (or before) the spill hop, not after it.
            assert!(
                queue.start_us <= spill.start_us + 1.0,
                "spilled queue span must start at original admission \
                 (queue {} vs spill {})",
                queue.start_us,
                spill.start_us
            );
        }
    }
    assert!(
        spilled_traces > 0,
        "queue of one never overflowed into a spill"
    );
    door.shutdown();
}
