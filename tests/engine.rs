//! Stress and integration tests for the concurrent engine: correctness
//! under contention (bit-identical to serial compiles), single-flight
//! compilation, shared executables, panic isolation, deadline handling,
//! parallel-vs-serial autotune equivalence, and tuning-store persistence
//! plus corruption fallback.

use multidim::Compiler;
use multidim_engine::{Engine, EngineConfig, EngineError, Request};
use multidim_ir::{ArrayId, SymId};
use multidim_workloads::catalog::catalog;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 8;

fn small_config() -> EngineConfig {
    EngineConfig {
        workers: 4,
        queue_capacity: 16,
        cache_capacity: 64,
        ..EngineConfig::default()
    }
}

/// Submit with retry-on-backpressure: a rejected request is resubmitted
/// after a short pause (the bounded queue sheds load; clients decide the
/// retry policy).
fn submit_until_accepted(
    engine: &Engine,
    request: Request,
) -> Result<multidim_engine::Ticket, EngineError> {
    loop {
        match engine.submit(request.clone()) {
            Ok(t) => return Ok(t),
            Err(EngineError::Rejected { .. }) => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => return Err(e),
        }
    }
}

#[test]
fn stress_all_workloads_from_eight_threads_matches_serial() {
    let entries = catalog();
    assert!(entries.len() >= 20, "expect the full catalog");

    // Cold serial baseline: one fresh compile+run per workload.
    let compiler = Compiler::new();
    let baseline: Vec<HashMap<ArrayId, Vec<f64>>> = entries
        .iter()
        .map(|e| {
            let exe = compiler.compile(&e.program, &e.bindings).expect("compiles");
            exe.run(&e.inputs).expect("runs").outputs
        })
        .collect();

    let engine = Arc::new(Engine::new(Compiler::new(), small_config()));
    let responses: Vec<Vec<multidim_engine::Response>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let engine = engine.clone();
                let entries = &entries;
                s.spawn(move || {
                    entries
                        .iter()
                        .map(|e| {
                            let req = Request::new(
                                e.program.clone(),
                                e.bindings.clone(),
                                e.inputs.clone(),
                            );
                            submit_until_accepted(&engine, req)
                                .expect("accepted")
                                .wait()
                                .expect("served")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every response is bit-identical to the cold serial compile.
    for client in &responses {
        for (resp, expected) in client.iter().zip(&baseline) {
            assert_eq!(resp.run.outputs.len(), expected.len());
            for (id, want) in expected {
                let got = &resp.run.outputs[id];
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "outputs must be bit-identical");
                }
            }
        }
    }

    // Single-flight: 8 clients x N workloads, but each distinct program
    // compiled exactly once. (The cache holds all entries, so every miss
    // is a real compile.)
    let stats = engine.cache_stats();
    assert_eq!(
        stats.misses as usize,
        entries.len(),
        "one compile per workload"
    );
    assert_eq!(
        stats.hits as usize,
        (CLIENTS - 1) * entries.len(),
        "all other requests are cache hits"
    );
    assert_eq!(stats.failures, 0);
    assert_eq!(stats.evictions, 0, "capacity 64 must hold the catalog");

    // Shared artifacts: for each workload, all 8 clients hold the same
    // allocation.
    for i in 0..entries.len() {
        let first = &responses[0][i].executable;
        for client in &responses[1..] {
            assert!(
                Arc::ptr_eq(first, &client[i].executable),
                "cache hits must be pointer-equal"
            );
        }
        assert!(
            responses.iter().filter(|c| c[i].cache_hit).count() == CLIENTS - 1,
            "exactly one client compiled workload {i}"
        );
    }

    let estats = engine.stats();
    assert_eq!(estats.completed as usize, CLIENTS * entries.len());
    assert_eq!(estats.failed, 0);
}

#[test]
fn panicking_request_is_isolated_and_pool_survives() {
    let engine = Engine::new(Compiler::new(), small_config());

    // A hostile binding (N = i64::MAX) deterministically panics inside
    // the mapping parameter search. The engine must contain it.
    let (program, mut bindings, inputs) = multidim_engine::doctest_workload();
    bindings.bind(SymId(0), i64::MAX);
    let err = engine
        .submit(Request::new(program, bindings, inputs))
        .expect("accepted")
        .wait()
        .expect_err("hostile request must fail");
    assert!(
        matches!(err, EngineError::WorkerPanic(_)),
        "expected WorkerPanic, got {err:?}"
    );

    // The pool is still alive and serves well-formed requests.
    let (program, bindings, inputs) = multidim_engine::doctest_workload();
    let out = program.output.expect("map output");
    let resp = engine
        .submit(Request::new(program, bindings, inputs))
        .expect("accepted")
        .wait()
        .expect("healthy request still served");
    assert_eq!(resp.run.outputs[&out][3], 2.0 * 3.0 + 1.0);
    let stats = engine.stats();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn expired_deadline_is_reported() {
    let engine = Engine::new(
        Compiler::new(),
        EngineConfig {
            default_deadline: Some(Duration::ZERO),
            ..small_config()
        },
    );
    let (program, bindings, inputs) = multidim_engine::doctest_workload();
    let err = engine
        .submit(Request::new(program, bindings, inputs))
        .expect("accepted")
        .wait()
        .expect_err("zero deadline must expire");
    assert!(matches!(err, EngineError::DeadlineExceeded { .. }));
    assert_eq!(engine.stats().expired, 1);
}

#[test]
fn run_batch_preserves_order_under_backpressure() {
    let entries = catalog();
    let engine = Engine::new(
        Compiler::new(),
        EngineConfig {
            workers: 2,
            queue_capacity: 2, // force flow control
            ..small_config()
        },
    );
    let requests: Vec<Request> = entries
        .iter()
        .map(|e| Request::new(e.program.clone(), e.bindings.clone(), e.inputs.clone()))
        .collect();
    let results = engine.run_batch(requests);
    assert_eq!(results.len(), entries.len());
    for (e, r) in entries.iter().zip(&results) {
        let resp = r
            .as_ref()
            .unwrap_or_else(|err| panic!("{}: {err}", e.name()));
        // Order is preserved: response i is for request i, which we can
        // verify through the fingerprint.
        let expect = Compiler::new().fingerprint(&e.program, &e.bindings);
        assert_eq!(resp.fingerprint, expect);
    }
    assert_eq!(engine.stats().failed, 0);
}

#[test]
fn parallel_autotune_matches_serial_selection() {
    let entries = catalog();
    let engine = Engine::new(Compiler::new(), small_config());
    let options = multidim_mapping::TuneOptions::default();
    for e in entries.iter().take(3) {
        let (_serial_exe, serial) = Compiler::new()
            .autotune(&e.program, &e.bindings, &e.inputs, &options)
            .expect("serial tune");
        let (_exe, record) = engine
            .autotune(&e.program, &e.bindings, &e.inputs, &options)
            .expect("parallel tune");
        assert_eq!(
            record.mapping,
            serial.best,
            "{}: parallel tuning must select the same mapping as serial",
            e.name()
        );
        assert_eq!(record.tuned_cost, serial.best_cost);
    }
}

#[test]
fn tuned_mapping_survives_restart_and_is_preferred() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("multidim-engine-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (program, bindings, inputs) = multidim_engine::doctest_workload();
    let options = multidim_mapping::TuneOptions::default();

    let tuned_mapping = {
        let engine = Engine::new(
            Compiler::new(),
            EngineConfig {
                store_path: Some(path.clone()),
                ..small_config()
            },
        );
        let (_exe, record) = engine
            .autotune(&program, &bindings, &inputs, &options)
            .expect("tune");
        engine.shutdown(); // persists the store
        record.mapping
    };

    // A fresh engine (new process restart, conceptually) loads the store
    // and serves the tuned mapping without re-tuning.
    let engine = Engine::new(
        Compiler::new(),
        EngineConfig {
            store_path: Some(path.clone()),
            ..small_config()
        },
    );
    assert_eq!(engine.store_load().loaded, 1);
    assert!(engine.store_load().quarantined.is_none());
    let resp = engine
        .submit(Request::new(program, bindings, inputs))
        .expect("accepted")
        .wait()
        .expect("served");
    assert!(resp.tuned, "request must be served from the tuning store");
    assert_eq!(resp.executable.mapping, tuned_mapping);
    assert_eq!(engine.stats().tuned_served, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_store_falls_back_to_analytic_mapping() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "multidim-engine-corrupt-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let (program, bindings, inputs) = multidim_engine::doctest_workload();
    let options = multidim_mapping::TuneOptions::default();

    {
        let engine = Engine::new(
            Compiler::new(),
            EngineConfig {
                store_path: Some(path.clone()),
                ..small_config()
            },
        );
        engine
            .autotune(&program, &bindings, &inputs, &options)
            .expect("tune");
        engine.shutdown();
    }

    // Truncate the store mid-entry: the loader must quarantine it, not
    // crash, and the engine must fall back to the analytic mapping.
    let body = std::fs::read_to_string(&path).expect("store exists");
    std::fs::write(&path, &body[..body.len() / 2]).unwrap();

    let engine = Engine::new(
        Compiler::new(),
        EngineConfig {
            store_path: Some(path.clone()),
            ..small_config()
        },
    );
    let quarantined = engine
        .store_load()
        .quarantined
        .clone()
        .expect("corrupt store must be quarantined");
    assert_eq!(engine.store_load().loaded, 0);
    let resp = engine
        .submit(Request::new(program.clone(), bindings.clone(), inputs))
        .expect("accepted")
        .wait()
        .expect("served despite corrupt store");
    assert!(!resp.tuned, "no tuned record: analytic mapping serves");
    let analytic = Compiler::new()
        .compile(&program, &bindings)
        .expect("analytic compile");
    assert_eq!(resp.executable.mapping, analytic.mapping);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&quarantined);
}

#[test]
fn trace_stitches_spans_and_backdated_admission_charges_full_wait() {
    use multidim_trace::{install_store, TailSamplerConfig, TraceOutcome, TraceStore};
    use std::time::Instant;

    // `latency_threshold: 0.0` marks every completion slow, so the tail
    // sampler keeps this trace deterministically. Other tests in this
    // binary may stream traces into the same process-wide store while the
    // guard is held; every assertion below is scoped to our own trace id.
    let store = Arc::new(TraceStore::new(TailSamplerConfig {
        latency_threshold: 0.0,
        ..TailSamplerConfig::default()
    }));
    let _guard = install_store(store.clone());

    let entries = catalog();
    let entry = &entries[0];
    let engine = Engine::new(Compiler::new(), small_config());
    let mut request = Request::new(
        entry.program.clone(),
        entry.bindings.clone(),
        entry.inputs.clone(),
    );
    // A spilled resubmission carries its original admission instant; the
    // engine must charge the full wait, not just the retry's slice.
    request.admitted_at = Some(Instant::now() - Duration::from_millis(50));
    let resp = engine
        .submit(request)
        .expect("accepted")
        .wait()
        .expect("served");
    engine.shutdown();

    assert!(
        resp.queue_wait >= Duration::from_millis(50),
        "backdated admission undercounted: {:?}",
        resp.queue_wait
    );
    let ctx = resp
        .trace
        .expect("engine mints a trace when a store is installed");
    let stored = store
        .lookup(ctx.trace_id)
        .expect("completion kept at latency_threshold 0");
    assert_eq!(stored.outcome, TraceOutcome::Completed);

    // One stitched tree: a single root, with the queue wait and both
    // service phases hanging off it even though admission happened on
    // this thread and the work ran on a pool worker.
    let roots: Vec<_> = stored.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root span: {:?}", stored.spans);
    let root = roots[0];
    assert_eq!((root.cat, root.name), ("engine", "request"));
    for name in ["queue", "compile", "run"] {
        let span = stored
            .spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing `{name}` span in {:?}", stored.spans));
        assert_eq!(
            span.parent,
            Some(root.span_id),
            "`{name}` stitches under the root"
        );
    }
    let queue = stored.spans.iter().find(|s| s.name == "queue").unwrap();
    assert!(
        queue.dur_us >= 50_000.0,
        "queue span must cover the backdated wait: {} us",
        queue.dur_us
    );
}
