//! End-to-end pipeline tests: pattern program → analysis → codegen →
//! simulation, validated against the reference interpreter.

use multidim::prelude::*;
use multidim_ir::{interpret, ArrayId, Effect, ReduceOp};
use std::collections::HashMap;

fn check(program: &Program, bind: &Bindings, inputs: &HashMap<ArrayId, Vec<f64>>) {
    let exe = Compiler::new().compile(program, bind).expect("compile");
    let report = exe.run(inputs).expect("run");
    let want = interpret(program, bind, inputs).expect("interpret");
    for (id, got) in &report.outputs {
        let expect = &want.array(*id).data;
        assert_eq!(got.len(), expect.len(), "length of array {id:?}");
        for (i, (g, w)) in got.iter().zip(expect).enumerate() {
            assert!(
                (g - w).abs() <= 1e-6 * w.abs().max(1.0),
                "{} array {id:?}[{i}]: {g} vs {w} under {}",
                program.name,
                exe.mapping
            );
        }
    }
}

#[test]
fn two_level_map_reduce_odd_sizes() {
    for (r, c) in [(1, 1), (1, 100), (100, 1), (33, 65), (128, 31)] {
        let mut b = ProgramBuilder::new("sumRows");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(rs), |b, row| {
            b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        let data: Vec<f64> = (0..r * c).map(|x| ((x * 13) % 17) as f64).collect();
        let inputs: HashMap<_, _> = [(m, data)].into_iter().collect();
        check(&p, &bind, &inputs);
    }
}

#[test]
fn reduce_ops_min_max_mul() {
    for op in [ReduceOp::Min, ReduceOp::Max, ReduceOp::Mul] {
        let mut b = ProgramBuilder::new("rops");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F64, &[Size::sym(n)]);
        let root = b.map(Size::from(4), |b, _| {
            b.reduce(Size::sym(n), op, |b, i| b.read(a, &[i.into()]))
        });
        let p = b.finish_map(root, "out", ScalarKind::F64).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 37);
        let data: Vec<f64> = (0..37).map(|x| 0.8 + ((x * 7) % 5) as f64 / 10.0).collect();
        let inputs: HashMap<_, _> = [(a, data)].into_iter().collect();
        check(&p, &bind, &inputs);
    }
}

#[test]
fn root_reduce_with_split_combiner() {
    // A root reduce is forced to Span(all) and ControlDOP splits it:
    // exercises the combiner-kernel path.
    let mut b = ProgramBuilder::new("dot");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let y = b.input("y", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.reduce(Size::sym(n), ReduceOp::Add, |b, i| {
        b.read(x, &[i.into()]) * b.read(y, &[i.into()])
    });
    let p = b.finish_reduce(root, "dot", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 100_000);
    let xs: Vec<f64> = (0..100_000).map(|i| ((i % 7) as f64) / 8.0).collect();
    let ys: Vec<f64> = (0..100_000).map(|i| ((i % 5) as f64) / 4.0).collect();
    let inputs: HashMap<_, _> = [(x, xs), (y, ys)].into_iter().collect();
    let exe = Compiler::new().compile(&p, &bind).unwrap();
    assert!(
        exe.kernels.kernels.len() >= 2,
        "expected a combiner kernel, got {:?}",
        exe.kernels
            .kernels
            .iter()
            .map(|k| &k.name)
            .collect::<Vec<_>>()
    );
    check(&p, &bind, &inputs);
}

#[test]
fn filter_compacts_as_multiset() {
    let mut b = ProgramBuilder::new("pos");
    let n = b.sym("N");
    let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.filter(Size::sym(n), |b, i| {
        let e = b.read(a, &[i.into()]);
        (e.clone().gt(Expr::lit(0.5)), e)
    });
    let p = b.finish_filter(root, "kept", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 1000);
    let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
    let inputs: HashMap<_, _> = [(a, data)].into_iter().collect();

    let exe = Compiler::new().compile(&p, &bind).unwrap();
    let report = exe.run(&inputs).unwrap();
    let want = interpret(&p, &bind, &inputs).unwrap();
    let count = want.filter_count.unwrap();
    assert_eq!(report.output(p.output_count.unwrap())[0] as usize, count);
    let mut got: Vec<f64> = report.output(p.output.unwrap())[..count].to_vec();
    let mut expect: Vec<f64> = want.array(p.output.unwrap()).data[..count].to_vec();
    got.sort_by(f64::total_cmp);
    expect.sort_by(f64::total_cmp);
    assert_eq!(got, expect);
}

#[test]
fn group_by_histogram_matches() {
    let mut b = ProgramBuilder::new("hist");
    let n = b.sym("N");
    let keys = b.input("keys", ScalarKind::I32, &[Size::sym(n)]);
    let vals = b.input("vals", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.group_by(Size::sym(n), Size::from(32), ReduceOp::Add, |b, i| {
        (b.read(keys, &[i.into()]), b.read(vals, &[i.into()]))
    });
    let p = b.finish_group_by(root, "hist", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 5000);
    let ks: Vec<f64> = (0..5000).map(|i| ((i * 131) % 32) as f64).collect();
    let vs: Vec<f64> = (0..5000).map(|i| ((i % 9) as f64) * 0.25).collect();
    let inputs: HashMap<_, _> = [(keys, ks), (vals, vs)].into_iter().collect();
    check(&p, &bind, &inputs);
}

#[test]
fn foreach_scatter_with_nested_level() {
    let mut b = ProgramBuilder::new("outerprod");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let out = b.output("out", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]);
    let root = b.foreach(Size::sym(n), |b, i| {
        let inner = b.foreach(Size::sym(n), |b, j| {
            let v = b.read(x, &[i.into()]) * b.read(x, &[j.into()]);
            vec![Effect::Write {
                cond: None,
                array: out,
                idx: vec![i.into(), j.into()],
                value: v,
            }]
        });
        vec![b.nested_effect(inner)]
    });
    let p = b.finish_foreach(root).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 47);
    let inputs: HashMap<_, _> = [(x, (0..47).map(|v| v as f64 / 7.0).collect())]
        .into_iter()
        .collect();
    check(&p, &bind, &inputs);
}

#[test]
fn cuda_emission_matches_figure9_structure() {
    // Figure 9's sumRows kernel shape: a y-indexed row, a strided x loop,
    // shared memory, __syncthreads or warp-synchronous reduce, a guarded
    // store.
    let mut b = ProgramBuilder::new("sumRows");
    let rs = b.sym("R");
    let cs = b.sym("C");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
    let root = b.map(Size::sym(rs), |b, row| {
        b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
            b.read(m, &[row.into(), col.into()])
        })
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(rs, 4096);
    bind.bind(cs, 4096);
    let exe = Compiler::new().compile(&p, &bind).unwrap();
    let cuda = exe.cuda_source();
    assert!(cuda.contains("__global__ void sumRows_kernel"), "{cuda}");
    assert!(cuda.contains("__shared__ double"), "{cuda}");
    assert!(cuda.contains("blockIdx.y"), "{cuda}");
    assert!(cuda.contains("threadIdx.x"), "{cuda}");
    assert!(cuda.contains("+= blockDim.x"), "{cuda}");
    assert!(cuda.contains("if ((threadIdx.x == 0)"), "{cuda}");
}

#[test]
fn c2050_device_also_works() {
    let mut b = ProgramBuilder::new("scale");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| b.read(x, &[i.into()]) * Expr::lit(2.0));
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 10_000);
    let exe = Compiler::new()
        .gpu(GpuSpec::tesla_c2050())
        .compile(&p, &bind)
        .unwrap();
    let inputs: HashMap<_, _> = [(x, vec![3.0; 10_000])].into_iter().collect();
    let report = exe.run(&inputs).unwrap();
    assert!(report.output(p.output.unwrap()).iter().all(|&v| v == 6.0));
}

#[test]
fn autotuner_finds_a_mapping_at_least_as_fast() {
    use multidim_mapping::TuneOptions;
    // Mandelbrot-ish skewed grid: the static pick is good; the tuner must
    // do no worse.
    let mut b = ProgramBuilder::new("grid");
    let h = b.sym("H");
    let w = b.sym("W");
    let root = b.map(Size::sym(h), |b, y| {
        b.map(Size::sym(w), |_, x| {
            Expr::var(y) * Expr::lit(0.5) + Expr::var(x) * Expr::lit(0.25)
        })
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(h, 40);
    bind.bind(w, 512);
    let inputs = HashMap::new();

    let compiler = Compiler::new();
    let static_exe = compiler.compile(&p, &bind).unwrap();
    let static_time = static_exe.run(&inputs).unwrap().gpu_seconds;

    let (tuned_exe, result) = compiler
        .autotune(&p, &bind, &inputs, &TuneOptions::default())
        .unwrap();
    assert!(
        result.best_cost <= static_time * 1.0001,
        "tuned {} vs static {static_time}",
        result.best_cost
    );
    // Locality pruning may skip candidates without simulating them, but
    // every candidate is still *evaluated* (measured or proven worse).
    assert!(result.measured.len() + result.pruned > 50);
    // The tuned executable really uses the winning mapping.
    assert_eq!(tuned_exe.mapping, result.best);
    let rerun = tuned_exe.run(&inputs).unwrap().gpu_seconds;
    assert!((rerun - result.best_cost).abs() < 1e-12);
}

#[test]
fn score_pruned_autotune_is_cheaper_and_close() {
    use multidim_mapping::TuneOptions;
    let mut b = ProgramBuilder::new("grid");
    let h = b.sym("H");
    let w = b.sym("W");
    let root = b.map(Size::sym(h), |b, y| {
        b.map(Size::sym(w), |_, x| Expr::var(y) + Expr::var(x))
    });
    let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(h, 32);
    bind.bind(w, 256);
    let inputs = HashMap::new();
    // Disable locality pruning so the comparison isolates the score floor.
    let compiler = Compiler::new().prune(false);
    let (_, full) = compiler
        .autotune(&p, &bind, &inputs, &TuneOptions::default())
        .unwrap();
    let (_, pruned) = compiler
        .autotune(
            &p,
            &bind,
            &inputs,
            &TuneOptions {
                score_floor: 0.8,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(pruned.measured.len() < full.measured.len());
    assert!(pruned.best_cost <= full.best_cost * 1.5);
}
