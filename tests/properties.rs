//! Property-based tests on the framework's core invariants.
//!
//! These are randomized (but fully deterministic) tests driven by the
//! internal [`multidim_workloads::data::Rng`]: each property runs a fixed
//! number of seeded cases and asserts the invariant on every one, printing
//! the failing case's parameters on violation.

use multidim::prelude::Strategy as MapStrategy;
use multidim::prelude::*;
use multidim_ir::{interpret, ReduceOp};
use multidim_sim::{bank_conflicts, coalesce};
use multidim_workloads::data::Rng;
use std::collections::HashMap;

const CASES: u64 = 48;

/// Simulated execution of a randomly shaped map/reduce nest matches
/// the reference interpreter under a random strategy.
#[test]
fn sim_matches_interpreter() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x51AB + case);
        let r = rng.range_i64(1, 96) as usize;
        let c = rng.range_i64(1, 96) as usize;
        let strategy = [
            MapStrategy::MultiDim,
            MapStrategy::OneD,
            MapStrategy::ThreadBlockThread,
            MapStrategy::WarpBased,
        ][rng.below(4)];
        let seed = rng.next_u64() % 1000;
        let transpose = rng.below(2) == 1;

        let mut b = ProgramBuilder::new("prop");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = if transpose {
            b.map(Size::sym(cs), |b, col| {
                b.reduce(Size::sym(rs), ReduceOp::Add, |b, row| {
                    b.read(m, &[row.into(), col.into()])
                })
            })
        } else {
            b.map(Size::sym(rs), |b, row| {
                b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                    b.read(m, &[row.into(), col.into()])
                })
            })
        };
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r as i64);
        bind.bind(cs, c as i64);
        let data: Vec<f64> = (0..r * c)
            .map(|x| ((x as u64 ^ seed) % 31) as f64)
            .collect();
        let inputs: HashMap<_, _> = [(m, data)].into_iter().collect();

        let exe = Compiler::new()
            .strategy(strategy)
            .compile(&p, &bind)
            .unwrap();
        let got = exe.run(&inputs).unwrap();
        let want = interpret(&p, &bind, &inputs).unwrap();
        let out = p.output.unwrap();
        for (g, w) in got.output(out).iter().zip(&want.array(out).data) {
            assert!(
                (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                "case {case} (r={r} c={c} {strategy} transpose={transpose}): {g} vs {w}"
            );
        }
    }
}

/// Coalescing invariants: between 1 and `lanes` transactions; exact
/// bounds for unit-stride and huge-stride patterns; and a subset of a
/// warp's accesses never needs more transactions.
#[test]
fn coalescing_bounds() {
    let gpu = GpuSpec::tesla_k20c();
    for case in 0..CASES * 4 {
        let mut rng = Rng::new(0xC0A1 + case);
        let stride = rng.range_i64(1, 2048) as u64;
        let base = rng.range_i64(0, 10_000) as u64;
        let lanes = rng.range_i64(1, 33) as usize;

        let addrs: Vec<u64> = (0..lanes as u64).map(|l| base + l * stride * 4).collect();
        let (tx, bytes) = coalesce(&gpu, &addrs);
        assert!(
            tx >= 1 && tx <= lanes as u64,
            "case {case}: tx {tx} lanes {lanes}"
        );
        assert_eq!(bytes, tx * 128, "case {case}");
        // Subset property.
        let half = &addrs[..lanes.div_ceil(2)];
        let (tx_half, _) = coalesce(&gpu, half);
        assert!(tx_half <= tx, "case {case}: subset needs more transactions");
        // Unit stride (4B elements): at most ceil(lanes*4 / 128) + 1 segs.
        if stride == 1 {
            assert!(tx <= (lanes as u64 * 4).div_ceil(128) + 1, "case {case}");
        }
        // Strides >= 32 elements: every lane its own segment.
        if stride * 4 >= 128 {
            assert_eq!(tx, lanes as u64, "case {case}");
        }
    }
}

/// Bank conflicts: zero for unit stride, lanes-1 for stride = banks,
/// never exceeding lanes - 1.
#[test]
fn bank_conflict_bounds() {
    for case in 0..CASES * 4 {
        let mut rng = Rng::new(0xBA2C + case);
        let stride = rng.range_i64(1, 128) as u64;
        let lanes = rng.range_i64(1, 33) as usize;

        let words: Vec<u64> = (0..lanes as u64).map(|l| l * stride).collect();
        let extra = bank_conflicts(32, &words);
        assert!(
            extra < lanes as u64,
            "case {case}: stride {stride} lanes {lanes}"
        );
        if stride.is_multiple_of(32) && stride > 0 {
            assert_eq!(extra, lanes as u64 - 1, "case {case}");
        }
        if stride == 1 {
            assert_eq!(extra, 0, "case {case}");
        }
    }
}

/// DOP algebra: grid coverage — blocks × block × span covers the
/// extent for Span(n); Split multiplies DOP by k.
#[test]
fn mapping_algebra() {
    use multidim_mapping::{Dim, LevelMapping, MappingDecision, Span};
    for case in 0..CASES * 4 {
        let mut rng = Rng::new(0xA16E + case);
        let extent = rng.range_i64(1, 1_000_000);
        let block = 1u32 << rng.range_i64(0, 11) as u32;
        let n = rng.range_i64(1, 64);
        let k = rng.range_i64(1, 64);

        let m = MappingDecision::new(vec![LevelMapping {
            dim: Dim::X,
            block_size: block,
            span: Span::Span(n),
        }]);
        let blocks = m.grid_blocks(&[extent])[0];
        assert!(
            blocks as i64 * block as i64 * n >= extent,
            "case {case}: grid does not cover extent"
        );
        // Tight: one fewer block would not cover.
        assert!(
            (blocks as i64 - 1) * block as i64 * n < extent,
            "case {case}: grid oversized"
        );

        let all = MappingDecision::new(vec![LevelMapping {
            dim: Dim::X,
            block_size: block,
            span: Span::All,
        }]);
        let split = MappingDecision::new(vec![LevelMapping {
            dim: Dim::X,
            block_size: block,
            span: Span::Split(k),
        }]);
        assert_eq!(
            all.dop(&[extent]) * k as u64,
            split.dop(&[extent]),
            "case {case}"
        );
    }
}

/// Size expression evaluation agrees with i64 arithmetic.
#[test]
fn size_arithmetic() {
    use multidim_ir::Bindings;
    for case in 0..CASES * 4 {
        let mut rng = Rng::new(0x512E + case);
        let a = rng.range_i64(0, 1_000_000);
        let b = rng.range_i64(1, 1000);

        let e = (Size::from(a) + Size::from(b)) * Size::from(2);
        assert_eq!(e.eval(&Bindings::new()), (a + b) * 2, "case {case}");
        let d = Size::from(a) / Size::from(b);
        assert_eq!(d.eval(&Bindings::new()), (a + b - 1) / b, "case {case}");
        let s = Size::from(a) - Size::from(b);
        assert_eq!(s.eval(&Bindings::new()), (a - b).max(0), "case {case}");
    }
}

/// The analysis is total and hard-valid for arbitrary (bounded) sizes.
#[test]
fn analysis_always_yields_valid_mapping() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xA7A1 + case);
        let r = rng.range_i64(1, 100_000);
        let c = rng.range_i64(1, 100_000);

        let mut b = ProgramBuilder::new("any");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(rs), |b, row| {
            b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        let gpu = GpuSpec::tesla_k20c();
        let a = multidim_mapping::analyze(&p, &bind, &gpu);
        // Hard constraints hold.
        assert!(
            a.constraints.hard_ok(&a.decision),
            "case {case} (r={r} c={c}): {}",
            a.decision
        );
        // The reduce level is never Span(1).
        assert!(
            !matches!(a.decision.level(1).span, multidim_mapping::Span::Span(_)),
            "case {case} (r={r} c={c}): {}",
            a.decision
        );
        assert!(a.decision.block_threads() <= 1024, "case {case}");
    }
}
