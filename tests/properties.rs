//! Property-based tests on the framework's core invariants.

use multidim::prelude::*;
use multidim::prelude::Strategy as MapStrategy;
use multidim_ir::{interpret, ReduceOp};
use multidim_sim::{bank_conflicts, coalesce};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Simulated execution of a randomly shaped map/reduce nest matches
    /// the reference interpreter under a random strategy.
    #[test]
    fn sim_matches_interpreter(
        r in 1usize..96,
        c in 1usize..96,
        strategy_idx in 0usize..4,
        seed in 0u64..1000,
        transpose in proptest::bool::ANY,
    ) {
        let strategy = [
            MapStrategy::MultiDim,
            MapStrategy::OneD,
            MapStrategy::ThreadBlockThread,
            MapStrategy::WarpBased,
        ][strategy_idx];

        let mut b = ProgramBuilder::new("prop");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = if transpose {
            b.map(Size::sym(cs), |b, col| {
                b.reduce(Size::sym(rs), ReduceOp::Add, |b, row| {
                    b.read(m, &[row.into(), col.into()])
                })
            })
        } else {
            b.map(Size::sym(rs), |b, row| {
                b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                    b.read(m, &[row.into(), col.into()])
                })
            })
        };
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r as i64);
        bind.bind(cs, c as i64);
        let data: Vec<f64> = (0..r * c).map(|x| ((x as u64 ^ seed) % 31) as f64).collect();
        let inputs: HashMap<_, _> = [(m, data)].into_iter().collect();

        let exe = Compiler::new().strategy(strategy).compile(&p, &bind).unwrap();
        let got = exe.run(&inputs).unwrap();
        let want = interpret(&p, &bind, &inputs).unwrap();
        let out = p.output.unwrap();
        for (g, w) in got.output(out).iter().zip(&want.array(out).data) {
            prop_assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    /// Coalescing invariants: between 1 and `lanes` transactions; exact
    /// bounds for unit-stride and huge-stride patterns; and a subset of a
    /// warp's accesses never needs more transactions.
    #[test]
    fn coalescing_bounds(
        stride in 1u64..2048,
        base in 0u64..10_000,
        lanes in 1usize..33,
    ) {
        let gpu = GpuSpec::tesla_k20c();
        let addrs: Vec<u64> = (0..lanes as u64).map(|l| base + l * stride * 4).collect();
        let (tx, bytes) = coalesce(&gpu, &addrs);
        prop_assert!(tx >= 1 && tx <= lanes as u64);
        prop_assert_eq!(bytes, tx * 128);
        // Subset property.
        let half = &addrs[..lanes.div_ceil(2)];
        let (tx_half, _) = coalesce(&gpu, half);
        prop_assert!(tx_half <= tx);
        // Unit stride (4B elements): at most ceil(lanes*4 / 128) + 1 segs.
        if stride == 1 {
            prop_assert!(tx <= (lanes as u64 * 4).div_ceil(128) + 1);
        }
        // Strides >= 32 elements: every lane its own segment.
        if stride * 4 >= 128 {
            prop_assert_eq!(tx, lanes as u64);
        }
    }

    /// Bank conflicts: zero for unit stride, lanes-1 for stride = banks,
    /// never exceeding lanes - 1.
    #[test]
    fn bank_conflict_bounds(stride in 1u64..128, lanes in 1usize..33) {
        let words: Vec<u64> = (0..lanes as u64).map(|l| l * stride).collect();
        let extra = bank_conflicts(32, &words);
        prop_assert!(extra <= lanes as u64 - 1);
        if stride % 32 == 0 && stride > 0 {
            prop_assert_eq!(extra, lanes as u64 - 1);
        }
        if stride == 1 {
            prop_assert_eq!(extra, 0);
        }
    }

    /// DOP algebra: grid coverage — blocks × block × span covers the
    /// extent for Span(n); Split multiplies DOP by k.
    #[test]
    fn mapping_algebra(
        extent in 1i64..1_000_000,
        block_pow in 0u32..11,
        n in 1i64..64,
        k in 1i64..64,
    ) {
        use multidim_mapping::{Dim, LevelMapping, MappingDecision, Span};
        let block = 1u32 << block_pow;
        let m = MappingDecision::new(vec![LevelMapping {
            dim: Dim::X,
            block_size: block,
            span: Span::Span(n),
        }]);
        let blocks = m.grid_blocks(&[extent])[0];
        prop_assert!(blocks as i64 * block as i64 * n >= extent);
        // Tight: one fewer block would not cover.
        prop_assert!((blocks as i64 - 1) * block as i64 * n < extent);

        let all = MappingDecision::new(vec![LevelMapping {
            dim: Dim::X,
            block_size: block,
            span: Span::All,
        }]);
        let split = MappingDecision::new(vec![LevelMapping {
            dim: Dim::X,
            block_size: block,
            span: Span::Split(k),
        }]);
        prop_assert_eq!(all.dop(&[extent]) * k as u64, split.dop(&[extent]));
    }

    /// Size expression evaluation agrees with i64 arithmetic.
    #[test]
    fn size_arithmetic(a in 0i64..1_000_000, b in 1i64..1000) {
        use multidim_ir::Bindings;
        let e = (Size::from(a) + Size::from(b)) * Size::from(2);
        prop_assert_eq!(e.eval(&Bindings::new()), (a + b) * 2);
        let d = Size::from(a) / Size::from(b);
        prop_assert_eq!(d.eval(&Bindings::new()), (a + b - 1) / b);
        let s = Size::from(a) - Size::from(b);
        prop_assert_eq!(s.eval(&Bindings::new()), (a - b).max(0));
    }

    /// The analysis is total and hard-valid for arbitrary (bounded) sizes.
    #[test]
    fn analysis_always_yields_valid_mapping(r in 1i64..100_000, c in 1i64..100_000) {
        let mut b = ProgramBuilder::new("any");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(rs), |b, row| {
            b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        let gpu = GpuSpec::tesla_k20c();
        let a = multidim_mapping::analyze(&p, &bind, &gpu);
        // Hard constraints hold.
        prop_assert!(a.constraints.hard_ok(&a.decision), "{}", a.decision);
        // The reduce level is never Span(1).
        prop_assert!(!matches!(
            a.decision.level(1).span,
            multidim_mapping::Span::Span(_)
        ));
        prop_assert!(a.decision.block_threads() <= 1024);
    }
}
