//! Fleet-observability integration: the engine's metrics registry fills as
//! requests are served, failing requests leave post-mortem bundles with
//! the flight recorder's last events and partial phase timings, stitched
//! per-request profiles carry search and simulator detail, and a shared
//! trace sink installed on the main thread captures worker-side events.

use multidim::Compiler;
use multidim_engine::{Engine, EngineConfig, Request};
use multidim_ir::{Bindings, Effect, Expr, Program, ProgramBuilder, ScalarKind, Size, SymId};
use multidim_trace::json::Json;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn small_config() -> EngineConfig {
    EngineConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        ..EngineConfig::default()
    }
}

/// A foreach in which every instance stores to `y[0]` — a proven race,
/// aborted by static analysis with `MD001`.
fn racy_workload() -> (Program, Bindings, HashMap<multidim_ir::ArrayId, Vec<f64>>) {
    let mut b = ProgramBuilder::new("racy");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let y = b.output("y", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.foreach(Size::sym(n), |b, i| {
        let v = b.read(x, &[i.into()]);
        vec![Effect::Write {
            cond: None,
            array: y,
            idx: vec![Expr::int(0)],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    let mut inputs = HashMap::new();
    inputs.insert(x, vec![1.0; 64]);
    (p, bind, inputs)
}

#[test]
fn worker_panic_produces_a_post_mortem_bundle() {
    let engine = Engine::new(Compiler::new(), small_config());

    // A hostile binding (N = i64::MAX) deterministically panics inside the
    // mapping search — after the fingerprint phase, during compile.
    let (program, mut bindings, inputs) = multidim_engine::doctest_workload();
    bindings.bind(SymId(0), i64::MAX);
    let expected_fp = Compiler::new().fingerprint(&program, &bindings);
    engine
        .submit(Request::new(program, bindings, inputs))
        .expect("accepted")
        .wait()
        .expect_err("hostile request must fail");

    let bundles = engine.post_mortems();
    assert_eq!(bundles.len(), 1, "one failure, one bundle");
    let pm = &bundles[0];
    assert_eq!(pm.program, "doctest-saxpy");
    assert_eq!(
        pm.fingerprint.as_deref(),
        Some(expected_fp.to_string().as_str()),
        "bundle carries the failing request's content address"
    );
    assert!(
        pm.reason.contains("panicked"),
        "reason names the panic: {}",
        pm.reason
    );
    // Phase timings: queued, then died mid-compile — partial compile time
    // is reported, the run phase never started.
    assert!(pm.queue_seconds >= 0.0);
    assert!(
        pm.compile_seconds.is_some(),
        "panic struck during the compile phase"
    );
    assert_eq!(pm.run_seconds, None, "run never started");
    // The worker's flight-recorder ring captured what it was doing last.
    assert!(
        !pm.events.is_empty(),
        "bundle carries the worker's recent trace events"
    );
    assert!(
        pm.events.iter().any(|e| e.cat == "search"),
        "the panicking search left events in the ring: {:?}",
        pm.events
            .iter()
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>()
    );
    // The bundle serializes to valid JSON.
    Json::parse(&pm.render()).expect("post-mortem renders valid JSON");

    // Metrics agree: one panicked, one failed, none completed.
    let text = engine.render_metrics();
    assert!(text.contains("engine_panicked_total 1"), "{text}");
    assert!(text.contains("engine_failed_total 1"), "{text}");
}

#[test]
fn deadline_miss_produces_a_post_mortem_bundle() {
    let engine = Engine::new(Compiler::new(), small_config());
    let (program, bindings, inputs) = multidim_engine::doctest_workload();
    let expected_fp = Compiler::new().fingerprint(&program, &bindings);
    let mut request = Request::new(program, bindings, inputs);
    // A zero deadline has always expired by the time a worker dequeues.
    request.deadline = Some(Duration::ZERO);
    engine
        .submit(request)
        .expect("accepted")
        .wait()
        .expect_err("zero deadline must expire");

    let bundles = engine.post_mortems();
    assert_eq!(bundles.len(), 1);
    let pm = &bundles[0];
    assert!(
        pm.reason.contains("deadline exceeded"),
        "reason: {}",
        pm.reason
    );
    // The request never reached serve, but the bundle still carries its
    // fingerprint (recomputed for the report) and queue timing.
    assert_eq!(
        pm.fingerprint.as_deref(),
        Some(expected_fp.to_string().as_str())
    );
    assert_eq!(pm.compile_seconds, None, "compile never started");
    assert_eq!(pm.run_seconds, None);
    assert!(engine.render_metrics().contains("engine_expired_total 1"));
}

#[test]
fn failed_compile_produces_a_post_mortem_bundle() {
    let engine = Engine::new(Compiler::new(), small_config());
    let (program, bindings, inputs) = racy_workload();
    engine
        .submit(Request::new(program, bindings, inputs))
        .expect("accepted")
        .wait()
        .expect_err("proven race must abort compilation");

    let bundles = engine.post_mortems();
    assert_eq!(bundles.len(), 1);
    let pm = &bundles[0];
    assert_eq!(pm.program, "racy");
    assert!(
        pm.reason.contains("MD001"),
        "compile failure names the diagnostic: {}",
        pm.reason
    );
    assert!(pm.fingerprint.is_some());
    assert!(pm.compile_seconds.is_some(), "failed inside compile");
    assert_eq!(pm.run_seconds, None);
}

#[test]
fn registry_fills_as_requests_are_served() {
    let engine = Engine::new(Compiler::new(), small_config());
    let (program, bindings, inputs) = multidim_engine::doctest_workload();
    for _ in 0..3 {
        engine
            .submit(Request::new(
                program.clone(),
                bindings.clone(),
                inputs.clone(),
            ))
            .expect("accepted")
            .wait()
            .expect("served");
    }

    let text = engine.render_metrics();
    assert!(text.contains("engine_requests_total 3"), "{text}");
    assert!(text.contains("engine_completed_total 3"), "{text}");
    assert!(text.contains("engine_request_seconds_count 3"), "{text}");
    // Compile time is recorded only for the cache miss; hits skip it.
    assert!(text.contains("engine_compile_seconds_count 1"), "{text}");
    // Gauges synced from the cache and store.
    assert!(text.contains("engine_cache_hits 2"), "{text}");
    assert!(text.contains("engine_cache_misses 1"), "{text}");
    // The cache-miss compile ran the mapping search and the simulator fed
    // its counters through.
    assert!(text.contains("mapping_candidates_total"), "{text}");
    assert!(text.contains("sim_kernels_total 3"), "{text}");

    // JSON export parses and agrees on a counter.
    let json = Json::parse(&engine.registry().to_json().render()).expect("valid JSON");
    assert_eq!(
        json.get("engine_completed_total").and_then(Json::as_u64),
        Some(3)
    );
}

#[test]
fn profile_stitches_phases_search_and_simulator() {
    let engine = Engine::new(Compiler::new(), small_config());
    let (program, bindings, inputs) = multidim_engine::doctest_workload();
    let resp = engine
        .submit(Request::new(program, bindings, inputs))
        .expect("accepted")
        .wait()
        .expect("served");

    let profile = engine.profile(&resp);
    assert_eq!(profile.program, "doctest-saxpy");
    assert!(!profile.cache_hit, "first request compiles");
    assert_eq!(profile.fingerprint, resp.fingerprint.to_string());
    // Phases nest: compile + run happen inside the total.
    assert!(profile.phases.compile_seconds > 0.0);
    assert!(profile.phases.run_seconds > 0.0);
    assert!(
        profile.phases.total_seconds >= profile.phases.compile_seconds + profile.phases.run_seconds
    );
    // The analytic search ran, so the breakdown is present and sane.
    let search = profile.search.as_ref().expect("MultiDim analysis ran");
    assert!(search.candidates > 0);
    assert!(!search.mapping.is_empty());
    // Simulator metrics rode along as JSON.
    let j = profile.to_json();
    assert!(
        j.get("metrics")
            .and_then(|m| m.get("kernels"))
            .and_then(Json::as_arr)
            .is_some_and(|k| !k.is_empty()),
        "profile embeds per-kernel simulator metrics"
    );
    Json::parse(&profile.render()).expect("profile renders valid JSON");
}

#[test]
fn shared_sink_captures_worker_side_events() {
    // The satellite regression this guards: engine workers used to trace
    // into the void because sinks are thread-local. A process-wide shared
    // sink must see the compile pipeline's events from worker threads.
    let sink = Arc::new(multidim_trace::SharedMemorySink::new());
    let guard = multidim_trace::install_shared(sink.clone());

    let engine = Engine::new(Compiler::new(), small_config());
    let (program, bindings, inputs) = multidim_engine::doctest_workload();
    engine
        .submit(Request::new(program, bindings, inputs))
        .expect("accepted")
        .wait()
        .expect("served");
    engine.shutdown();
    drop(guard);

    let events = sink.drain();
    assert!(
        events.iter().any(|e| e.cat == "search"),
        "worker-side mapping-search events reach the shared sink"
    );
    assert!(
        events.iter().any(|e| e.cat == "core" && e.name == "run"),
        "worker-side run spans reach the shared sink: {:?}",
        events
            .iter()
            .map(|e| format!("{}/{}", e.cat, e.name))
            .collect::<Vec<_>>()
    );
}

#[test]
fn post_mortem_queue_is_bounded() {
    let engine = Engine::new(Compiler::new(), small_config());
    let (program, bindings, inputs) = racy_workload();
    for _ in 0..40 {
        engine
            .submit(Request::new(
                program.clone(),
                bindings.clone(),
                inputs.clone(),
            ))
            .expect("accepted")
            .wait()
            .expect_err("always fails");
    }
    assert_eq!(
        engine.post_mortems().len(),
        32,
        "bundle retention is bounded"
    );
    // The 8 evicted bundles were never read: the loss is counted, not
    // silent, and the counter reaches the exposition.
    assert_eq!(
        engine.post_mortems_dropped(),
        8,
        "40 failures minus 32 retained bundles"
    );
    assert!(engine
        .render_metrics()
        .contains("engine_post_mortems_dropped_total 8"));
}

#[test]
fn disabling_the_flight_recorder_leaves_bundles_without_events() {
    let engine = Engine::new(
        Compiler::new(),
        EngineConfig {
            flight_recorder_capacity: 0,
            ..small_config()
        },
    );
    let (program, mut bindings, inputs) = multidim_engine::doctest_workload();
    bindings.bind(SymId(0), i64::MAX);
    engine
        .submit(Request::new(program, bindings, inputs))
        .expect("accepted")
        .wait()
        .expect_err("hostile request must fail");
    let bundles = engine.post_mortems();
    assert_eq!(bundles.len(), 1, "bundles still recorded");
    assert!(
        bundles[0].events.is_empty(),
        "no recorder, no captured events"
    );
}

#[test]
fn sliding_window_survives_concurrent_record_and_rotate() {
    use multidim_obs::SlidingWindow;
    use std::sync::atomic::{AtomicBool, Ordering};

    // 4 recorder threads hammer the window while the main thread rotates
    // it on a tight cadence — the invariant is no sample is lost from the
    // retained horizon while the writer threads are live and the horizon
    // is deep enough to keep every rotation.
    let window = SlidingWindow::new(1_000_000);
    let stop = AtomicBool::new(false);
    let per_thread = 20_000u64;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let window = &window;
            s.spawn(move || {
                for i in 0..per_thread {
                    window.record(((t * per_thread + i) % 1000 + 1) as f64 * 1e-4);
                }
            });
        }
        let window = &window;
        let stop = &stop;
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                window.rotate();
                std::thread::yield_now();
            }
        });
        // Let recorders finish, then stop the rotator. The scope joins
        // the recorder threads only after this closure returns, so wait
        // on the merged count instead.
        while window.merged().count() < 4 * per_thread {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        window.merged().count(),
        4 * per_thread,
        "every concurrent record lands in exactly one retained window"
    );
}

#[test]
fn snapshot_merge_is_associative_and_commutative() {
    use multidim_obs::{Histogram, HistogramSnapshot};
    use multidim_workloads::data::Rng;

    // Property: for randomly generated sample sets A, B, C the merge
    // (A+B)+C equals A+(B+C) equals C+(B+A), bucket for bucket — merges
    // are exact, so window aggregation order can never change a quantile.
    let mut rng = Rng::new(0x5eed);
    for trial in 0..50 {
        let sets: Vec<HistogramSnapshot> = (0..3)
            .map(|_| {
                let h = Histogram::new();
                // Spread samples over ~9 orders of magnitude, including
                // the underflow bucket (non-positive samples).
                for _ in 0..rng.below(200) {
                    h.record(rng.range_f64(-1e-6, 1e3));
                }
                h.snapshot()
            })
            .collect();
        let (a, b, c) = (&sets[0], &sets[1], &sets[2]);

        let mut left = a.clone();
        left.merge(b);
        left.merge(c);

        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);

        let mut rev = c.clone();
        rev.merge(b);
        rev.merge(a);

        // Bucket counts, count, min, and max merge exactly; only `sum`
        // is floating-point, so it is associative up to rounding.
        let exact_eq = |x: &HistogramSnapshot, y: &HistogramSnapshot, law: &str| {
            assert_eq!(x.bucket_counts(), y.bucket_counts(), "{law}, trial {trial}");
            assert_eq!(x.count(), y.count(), "{law}, trial {trial}");
            assert_eq!(x.min(), y.min(), "{law}, trial {trial}");
            assert_eq!(x.max(), y.max(), "{law}, trial {trial}");
            let scale = x.sum().abs().max(1.0);
            assert!(
                (x.sum() - y.sum()).abs() <= 1e-9 * scale,
                "{law}: sums diverged beyond rounding, trial {trial}"
            );
        };
        exact_eq(&left, &right, "associativity");
        exact_eq(&left, &rev, "commutativity");
        assert_eq!(left.count(), a.count() + b.count() + c.count());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(
                left.quantile(q),
                rev.quantile(q),
                "quantiles must not depend on merge order (trial {trial})"
            );
        }
    }
}
