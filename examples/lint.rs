//! Run the static analyzer over every built-in workload and print the
//! diagnostics table.
//!
//! ```text
//! cargo run --release --example lint [--json]
//! ```
//!
//! For each workload: the `MD0xx` findings (severity, pattern, array,
//! message) followed by the per-array race-free / in-bounds verdict table.
//! Exits non-zero if any workload produces an `Error`-severity diagnostic —
//! shipped workloads must all come back clean, which is what the CI step
//! asserts.

use multidim::prelude::*;
use multidim::{AnalysisReport, Severity};
use multidim_trace::json::Json;
use multidim_workloads::catalog::catalog;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut reports: Vec<AnalysisReport> = Vec::new();
    let mut failures = 0usize;

    for e in catalog() {
        // Compile with checks off so an Error-severity finding is reported
        // here as a row instead of aborting the sweep; the exit code at the
        // bottom enforces the "no errors" contract.
        match Compiler::new()
            .checks(false)
            .compile(&e.program, &e.bindings)
        {
            Ok(exe) => {
                let mut report = multidim::analyze_program(&e.program, &e.bindings);
                report
                    .diagnostics
                    .extend(multidim::lint_mapping(&e.program, &exe.mapping));
                if report.has_errors() {
                    failures += 1;
                }
                reports.push(report);
            }
            Err(err) => {
                eprintln!("{}: failed to compile: {err}", e.name());
                failures += 1;
            }
        }
    }

    if json {
        let arr = Json::Arr(reports.iter().map(AnalysisReport::to_json).collect());
        println!("{}", arr.render());
    } else {
        for r in &reports {
            print!("{}", r.render());
            println!();
        }
        let total: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
        let errors: usize = reports.iter().map(|r| r.errors().count()).sum();
        let warns: usize = reports
            .iter()
            .flat_map(|r| &r.diagnostics)
            .filter(|d| d.severity == Severity::Warn)
            .count();
        println!(
            "{} workload(s): {} error(s), {} warning(s), {} info",
            reports.len(),
            errors,
            warns,
            total - errors - warns
        );
    }

    if failures > 0 {
        eprintln!("{failures} workload(s) with error-severity diagnostics");
        std::process::exit(1);
    }
}
