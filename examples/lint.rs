//! Run the static analyzer over every built-in workload and print the
//! diagnostics table.
//!
//! ```text
//! cargo run --release --example lint [--format json]
//! ```
//!
//! For each workload: the `MD0xx` findings (severity, pattern, array,
//! message) from all three analysis stages — program analysis, mapping
//! lint, and locality analysis — followed by the per-array race-free /
//! in-bounds verdict table. Diagnostics are deduplicated by (code,
//! pattern, array) and sorted, so output is byte-stable across runs.
//!
//! Exit codes: `0` all workloads clean, `1` at least one warning (but no
//! errors), `2` at least one error-severity diagnostic or compile
//! failure. CI runs `--format json` over the catalog and fails on `2`.

use multidim::prelude::*;
use multidim::{locality_of, AnalysisReport, LocalityFacts, Severity};
use multidim_codegen::CodegenOptions;
use multidim_trace::json::Json;
use multidim_workloads::catalog::catalog;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json")
        || args
            .windows(2)
            .any(|w| w[0] == "--format" && w[1] == "json");

    let mut reports: Vec<AnalysisReport> = Vec::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;

    for e in catalog() {
        // Compile with checks off so an Error-severity finding is reported
        // here as a row instead of aborting the sweep; the exit code at the
        // bottom enforces the "no errors" contract.
        match Compiler::new()
            .checks(false)
            .compile(&e.program, &e.bindings)
        {
            Ok(exe) => {
                let mut report = multidim::analyze_program(&e.program, &e.bindings);
                report
                    .diagnostics
                    .extend(multidim::lint_mapping(&e.program, &exe.mapping));
                // The locality stage is skipped when checks are off, so run
                // it here against the compiled mapping and kernels.
                let facts = LocalityFacts::of(&e.program, &e.bindings);
                let summary = locality_of(
                    &facts,
                    &exe.mapping,
                    &exe.kernels,
                    &e.bindings,
                    exe.device(),
                    CodegenOptions::default().smem_prefetch,
                );
                report.diagnostics.extend(summary.diagnostics());
                // Deterministic output: sort by (code, pattern, array,
                // message), then drop repeats of the same finding at the
                // same location.
                report.diagnostics.sort_by(|a, b| {
                    (a.code.0, a.pattern, &a.array, &a.message)
                        .cmp(&(b.code.0, b.pattern, &b.array, &b.message))
                });
                report.diagnostics.dedup_by(|a, b| {
                    a.code == b.code && a.pattern == b.pattern && a.array == b.array
                });
                errors += report.errors().count();
                warnings += report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Warn)
                    .count();
                reports.push(report);
            }
            Err(err) => {
                eprintln!("{}: failed to compile: {err}", e.name());
                errors += 1;
            }
        }
    }

    if json {
        let arr = Json::Arr(reports.iter().map(AnalysisReport::to_json).collect());
        println!("{}", arr.render());
    } else {
        for r in &reports {
            print!("{}", r.render());
            println!();
        }
        let total: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
        println!(
            "{} workload(s): {} error(s), {} warning(s), {} info",
            reports.len(),
            errors,
            warnings,
            total - errors - warnings
        );
    }

    if errors > 0 {
        eprintln!("{errors} error-severity diagnostic(s)");
        std::process::exit(2);
    }
    if warnings > 0 {
        std::process::exit(1);
    }
}
