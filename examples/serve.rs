//! Capstone demo of the service layer: replay the whole workload catalog
//! through the concurrent engine and report throughput, cache hit rate,
//! queue depth, and latency percentiles.
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! The first round is cold (every program compiles); the following rounds
//! hit the content-addressed cache and share the compiled executables.
//! One workload is auto-tuned in between, so the final rounds also show
//! the persistent tuning store being preferred over the analytic mapping.

use multidim::Compiler;
use multidim_engine::{Engine, EngineConfig, Request};
use multidim_workloads::catalog::catalog;
use std::error::Error;
use std::time::{Duration, Instant};

const ROUNDS: usize = 4;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

fn main() -> Result<(), Box<dyn Error>> {
    let store_path = std::env::temp_dir().join("multidim-serve-tuning.json");
    let config = EngineConfig {
        queue_capacity: 32,
        store_path: Some(store_path.clone()),
        ..EngineConfig::default()
    };
    let workers = config.workers;
    let engine = Engine::new(Compiler::new(), config);
    if let Some(q) = &engine.store_load().quarantined {
        println!("tuning store was corrupt; quarantined to {}", q.display());
    }

    let entries = catalog();
    println!(
        "serving {} catalog workloads x {ROUNDS} rounds on {workers} workers (queue 32)",
        entries.len()
    );

    let mut latencies: Vec<Duration> = Vec::new();
    let mut round_times: Vec<(f64, u64)> = Vec::new();
    let mut max_depth = 0usize;
    let started = Instant::now();
    for round in 0..ROUNDS {
        let hits_before = engine.cache_stats().hits;
        let round_start = Instant::now();
        let requests: Vec<Request> = entries
            .iter()
            .map(|e| Request::new(e.program.clone(), e.bindings.clone(), e.inputs.clone()))
            .collect();
        // run_batch applies flow control: when the bounded queue fills it
        // waits for the oldest in-flight request instead of dropping work.
        max_depth = max_depth.max(engine.queue_depth());
        let results = engine.run_batch(requests);
        max_depth = max_depth.max(engine.queue_depth());
        for (entry, result) in entries.iter().zip(&results) {
            match result {
                Ok(resp) => latencies.push(resp.queue_wait + resp.service_time),
                Err(e) => println!("  {}: FAILED: {e}", entry.name()),
            }
        }
        let elapsed = round_start.elapsed().as_secs_f64();
        let hits = engine.cache_stats().hits - hits_before;
        round_times.push((elapsed, hits));
        println!(
            "round {round}: {:>8.1} req/s  ({hits} cache hits)",
            results.len() as f64 / elapsed
        );

        if round == 0 {
            // Tune one workload across the pool; later rounds will be
            // served with the stored empirically-best mapping.
            let e = &entries[0];
            let options = multidim_mapping::TuneOptions::default();
            let (_exe, record) = engine.autotune(&e.program, &e.bindings, &e.inputs, &options)?;
            match record.analytic_delta() {
                Some(delta) => println!(
                    "tuned {}: cost {:.3e}, {delta:.2}x vs analytic mapping ({} candidates measured)",
                    e.name(),
                    record.tuned_cost,
                    record.measured
                ),
                None => println!(
                    "tuned {}: cost {:.3e} ({} candidates measured)",
                    e.name(),
                    record.tuned_cost,
                    record.measured
                ),
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();

    let stats = engine.stats();
    let cache = engine.cache_stats();
    latencies.sort();
    let total = (ROUNDS * entries.len()) as f64;
    println!();
    println!("=== engine summary ===");
    println!("  throughput     {:>10.1} req/s (overall)", total / wall);
    println!(
        "  cold round     {:>10.1} req/s, warm rounds {:>8.1} req/s",
        entries.len() as f64 / round_times[0].0,
        (total - entries.len() as f64) / round_times[1..].iter().map(|(t, _)| t).sum::<f64>()
    );
    println!(
        "  cache          {} hits / {} misses ({:.1}% hit rate), {} coalesced, {} evicted",
        cache.hits,
        cache.misses,
        100.0 * cache.hits as f64 / (cache.hits + cache.misses).max(1) as f64,
        cache.coalesced,
        cache.evictions
    );
    println!(
        "  requests       {} completed, {} failed, {} rejected, {} tuned-served",
        stats.completed, stats.failed, stats.rejected, stats.tuned_served
    );
    println!("  max queue depth observed: {max_depth}");
    println!(
        "  latency        p50 {}  p99 {}  max {}",
        fmt_ms(percentile(&latencies, 0.50)),
        fmt_ms(percentile(&latencies, 0.99)),
        fmt_ms(percentile(&latencies, 1.0))
    );
    println!(
        "  tuning store   {} records at {}",
        engine.store_len(),
        store_path.display()
    );

    // Smoke-test guarantees for CI: every request succeeded, the cache
    // deduplicated all repeat rounds, and tuned serving kicked in.
    assert_eq!(stats.failed, 0, "no request may fail");
    assert_eq!(
        cache.misses as usize,
        entries.len(),
        "each distinct workload compiles exactly once"
    );
    assert!(
        stats.tuned_served > 0,
        "tuned mapping must serve later rounds"
    );
    engine.shutdown();
    println!("ok");
    Ok(())
}
