//! Capstone demo of the service layer: replay the whole workload catalog
//! through the concurrent engine and report throughput, cache hit rate,
//! queue depth, and latency quantiles from the engine's own metrics
//! registry.
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! The first round is cold (every program compiles); the following rounds
//! hit the content-addressed cache and share the compiled executables.
//! One workload is auto-tuned in between, so the final rounds also show
//! the persistent tuning store being preferred over the analytic mapping.
//! The run ends with one request's stitched profile and the registry's
//! Prometheus-style text exposition.

use multidim::Compiler;
use multidim_engine::{Engine, EngineConfig, Request};
use multidim_obs::Histogram;
use multidim_workloads::catalog::catalog;
use std::error::Error;
use std::time::Instant;

const ROUNDS: usize = 4;

fn fmt_ms(seconds: f64) -> String {
    format!("{:.2} ms", seconds * 1e3)
}

fn main() -> Result<(), Box<dyn Error>> {
    let store_path = std::env::temp_dir().join("multidim-serve-tuning.json");
    let config = EngineConfig {
        queue_capacity: 32,
        store_path: Some(store_path.clone()),
        ..EngineConfig::default()
    };
    let workers = config.workers;
    let engine = Engine::new(Compiler::new(), config);
    if let Some(q) = &engine.store_load().quarantined {
        println!("tuning store was corrupt; quarantined to {}", q.display());
    }

    let entries = catalog();
    println!(
        "serving {} catalog workloads x {ROUNDS} rounds on {workers} workers (queue 32)",
        entries.len()
    );

    // Client-side latency view: the same log-bucketed histogram the engine
    // uses internally, so the quantiles here and in the exposition agree
    // on bucketing error.
    let latency = Histogram::new();
    let mut last_response = None;
    let mut round_times: Vec<(f64, u64)> = Vec::new();
    let mut max_depth = 0usize;
    let started = Instant::now();
    for round in 0..ROUNDS {
        let hits_before = engine.cache_stats().hits;
        let round_start = Instant::now();
        let requests: Vec<Request> = entries
            .iter()
            .map(|e| Request::new(e.program.clone(), e.bindings.clone(), e.inputs.clone()))
            .collect();
        // run_batch applies flow control: when the bounded queue fills it
        // waits for the oldest in-flight request instead of dropping work.
        max_depth = max_depth.max(engine.queue_depth());
        let results = engine.run_batch(requests);
        max_depth = max_depth.max(engine.queue_depth());
        for (entry, result) in entries.iter().zip(&results) {
            match result {
                Ok(resp) => {
                    latency.record((resp.queue_wait + resp.service_time).as_secs_f64());
                }
                Err(e) => println!("  {}: FAILED: {e}", entry.name()),
            }
        }
        if round == ROUNDS - 1 {
            last_response = results.into_iter().next().and_then(Result::ok);
        }
        let elapsed = round_start.elapsed().as_secs_f64();
        let hits = engine.cache_stats().hits - hits_before;
        round_times.push((elapsed, hits));
        println!(
            "round {round}: {:>8.1} req/s  ({hits} cache hits)",
            entries.len() as f64 / elapsed
        );

        if round == 0 {
            // Tune one workload across the pool; later rounds will be
            // served with the stored empirically-best mapping.
            let e = &entries[0];
            let options = multidim_mapping::TuneOptions::default();
            let (_exe, record) = engine.autotune(&e.program, &e.bindings, &e.inputs, &options)?;
            match record.analytic_delta() {
                Some(delta) => println!(
                    "tuned {}: cost {:.3e}, {delta:.2}x vs analytic mapping ({} candidates measured)",
                    e.name(),
                    record.tuned_cost,
                    record.measured
                ),
                None => println!(
                    "tuned {}: cost {:.3e} ({} candidates measured)",
                    e.name(),
                    record.tuned_cost,
                    record.measured
                ),
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();

    let stats = engine.stats();
    let cache = engine.cache_stats();
    let snap = latency.snapshot();
    let q = |p: f64| snap.quantile(p).unwrap_or(f64::NAN);
    let total = (ROUNDS * entries.len()) as f64;
    println!();
    println!("=== engine summary ===");
    println!("  throughput     {:>10.1} req/s (overall)", total / wall);
    println!(
        "  cold round     {:>10.1} req/s, warm rounds {:>8.1} req/s",
        entries.len() as f64 / round_times[0].0,
        (total - entries.len() as f64) / round_times[1..].iter().map(|(t, _)| t).sum::<f64>()
    );
    println!(
        "  cache          {} hits / {} misses ({:.1}% hit rate), {} coalesced, {} evicted",
        cache.hits,
        cache.misses,
        100.0 * cache.hits as f64 / (cache.hits + cache.misses).max(1) as f64,
        cache.coalesced,
        cache.evictions
    );
    println!(
        "  requests       {} completed, {} failed, {} rejected, {} tuned-served",
        stats.completed, stats.failed, stats.rejected, stats.tuned_served
    );
    println!("  max queue depth observed: {max_depth}");
    // Overload view: run_batch flow-controls instead of dropping, so both
    // rates are 0 here — the prints exist so the capstone shows the same
    // dashboard an overloaded fleet would (see the `load` bench).
    println!(
        "  shed rate      {:>9.2}%  deadline-miss rate {:>6.2}%",
        100.0 * stats.rejected as f64 / stats.submitted.max(1) as f64,
        100.0 * stats.expired as f64 / stats.submitted.max(1) as f64,
    );
    println!(
        "  latency        p50 {}  p99 {}  max {}",
        fmt_ms(q(0.50)),
        fmt_ms(q(0.99)),
        fmt_ms(q(1.0))
    );
    println!(
        "  tuning store   {} records at {}",
        engine.store_len(),
        store_path.display()
    );

    // Per-workload tail latency from the engine's own labelled histogram
    // family — the slowest programs under load, by the engine's account.
    let by_workload = engine
        .registry()
        .histogram_family(
            "engine_request_seconds_by_workload",
            "end-to-end request latency per workload",
            "workload",
        )
        .snapshot();
    let mut rows: Vec<(String, f64, u64)> = by_workload
        .into_iter()
        .filter_map(|(name, snap)| snap.quantile(0.99).map(|p99| (name, p99, snap.count())))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!();
    println!("=== per-workload p99 (engine view, slowest first) ===");
    for (name, p99, count) in rows.iter().take(8) {
        println!("  {name:<22} p99 {:>10}  ({count} requests)", fmt_ms(*p99));
    }
    assert_eq!(
        rows.len(),
        entries.len(),
        "every workload has a labelled latency histogram"
    );

    // One stitched per-request profile: latency phases, search breakdown,
    // simulator counters — the JSON a fleet dashboard would ingest.
    if let Some(resp) = &last_response {
        println!();
        println!("=== request profile ({}) ===", entries[0].name());
        println!("{}", engine.profile(resp).render());
    }

    // The registry's Prometheus-style exposition (gauges synced first).
    println!();
    println!("=== metrics exposition ===");
    print!("{}", engine.render_metrics());

    // Smoke-test guarantees for CI: every request succeeded, the cache
    // deduplicated all repeat rounds, tuned serving kicked in, and the
    // engine's own histogram saw every request.
    assert_eq!(stats.failed, 0, "no request may fail");
    assert_eq!(
        cache.misses as usize,
        entries.len(),
        "each distinct workload compiles exactly once"
    );
    assert!(
        stats.tuned_served > 0,
        "tuned mapping must serve later rounds"
    );
    assert_eq!(snap.count(), (ROUNDS * entries.len()) as u64);
    let exposition = engine.render_metrics();
    assert!(exposition.contains("# TYPE engine_request_seconds summary"));
    assert!(exposition.contains("engine_completed_total"));
    assert!(engine.post_mortems().is_empty(), "no failures, no bundles");
    engine.shutdown();
    println!("ok");
    Ok(())
}
