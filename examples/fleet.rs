//! Capstone demo of the serving tier: a 4-shard front door serving the
//! workload catalog on behalf of several tenants, with quotas,
//! rendezvous routing, fleet-wide coalescing, and overload shedding
//! all visible in the final dashboard.
//!
//! ```text
//! cargo run --release --example fleet
//! ```
//!
//! The run preloads the catalog (cold compiles, routed to each
//! program's home shard), then serves three rounds of tenant traffic:
//! a well-behaved tenant under its quota, a greedy tenant that blows
//! through its bucket into the shared spare capacity, and a burst of
//! identical submissions that the coalescing table folds onto one
//! compile. It ends with per-tenant SLO status and the front door's
//! metric exposition.

use multidim::Compiler;
use multidim_engine::{EngineConfig, Request};
use multidim_serve::{FrontDoor, FrontDoorConfig, QuotaPolicy, ServeError, TenantQuota};
use multidim_workloads::catalog::catalog;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let entries = catalog();
    let door = FrontDoor::new(
        Compiler::new(),
        FrontDoorConfig {
            shards: 4,
            shard: EngineConfig {
                workers: 2,
                queue_capacity: 16,
                ..EngineConfig::default()
            },
            // 40-request bursts per tenant, no refill over this short
            // demo; 20 more requests of shared spare capacity.
            quota: QuotaPolicy::per_tenant(0.0, 40.0).with_spare(TenantQuota::new(0.0, 20.0)),
            ..FrontDoorConfig::default()
        },
    );

    // Warm the fleet: every catalog entry compiles once, on its home
    // shard.
    let report = door.preload(entries.iter().map(request).collect());
    println!(
        "preload: warmed {} programs ({} from the tuning store), {} failed",
        report.warmed, report.tuned, report.failed
    );
    for shard in 0..door.shards() {
        let stats = door.shard(shard).cache_stats();
        println!(
            "  shard {shard}: {} resident executables ({} compiles)",
            door.shard(shard).cache_stats().misses - stats.failures,
            stats.misses
        );
    }

    // Tenant traffic: "steady" stays inside its bucket, "greedy"
    // exhausts its own and then the spare.
    let mut tickets = Vec::new();
    for round in 0..3usize {
        for (t, tenant) in ["steady", "greedy"].iter().enumerate() {
            let budget = if t == 0 { 10 } else { 25 };
            for i in 0..budget {
                let entry = &entries[(round + i) % entries.len()];
                match door.submit(tenant, request(entry)) {
                    Ok(ticket) => tickets.push(ticket),
                    Err(ServeError::QuotaExceeded { retry_after, .. }) => {
                        println!(
                            "  {tenant}: quota exhausted (retry in ~{:.0} s)",
                            retry_after.as_secs_f64()
                        );
                        break;
                    }
                    Err(e) => println!("  {tenant}: {e}"),
                }
            }
        }
    }
    // A burst of one identical cold-ish program: the coalescing table
    // folds concurrent submissions onto a single shard.
    for _ in 0..8 {
        if let Ok(t) = door.submit("bursty", request(&entries[0])) {
            tickets.push(t);
        }
    }
    let mut served = 0usize;
    for ticket in tickets {
        if ticket.wait().is_ok() {
            served += 1;
        }
    }

    let stats = door.stats();
    println!("\nserved {served} of {} submissions", stats.submitted);
    println!(
        "  quota-rejected {}  shed (deadline) {}  shed (overload) {}  spilled {}  coalesced {}",
        stats.quota_rejected,
        stats.shed_deadline,
        stats.shed_overload,
        stats.spilled,
        stats.coalesced
    );
    println!("\nper-tenant SLO status:");
    for (tenant, status) in door.slo_statuses() {
        println!(
            "  {tenant}: {} samples, {} errors, availability {}",
            status.samples,
            status.errors,
            status
                .availability
                .map(|a| format!("{:.1}%", a * 100.0))
                .unwrap_or_else(|| "-".to_string())
        );
    }
    println!("\n{}", door.render_metrics());
    door.shutdown();
    Ok(())
}

fn request(entry: &multidim_workloads::catalog::CatalogEntry) -> Request {
    Request::new(
        entry.program.clone(),
        entry.bindings.clone(),
        entry.inputs.clone(),
    )
}
