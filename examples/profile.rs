//! Profile a built-in workload end to end: trace the mapping search, the
//! lowering decisions, and the simulated kernel timeline, then export
//! everything.
//!
//! ```text
//! cargo run --release --example profile [sumrows|sumcols|pagerank] [OUT_DIR]
//! ```
//!
//! Prints the candidate-scoring table (why the winning mapping won, why the
//! rest were pruned or outscored) and the per-kernel profiler report, and
//! writes:
//!
//! * `trace.json` — Chrome trace-event JSON; load in Perfetto or
//!   `chrome://tracing` to see the compile-pipeline lane (wall clock) and
//!   the simulated-GPU lane (kernel slices + roofline sub-tracks);
//! * `metrics.json` — machine-readable [`multidim_sim::RunMetrics`].

use multidim::prelude::*;
use multidim_trace as trace;
use multidim_trace::chrome;
use std::collections::HashMap;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;
use std::rc::Rc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let workload = args.next().unwrap_or_else(|| "sumrows".to_string());
    let out_dir = args.next().unwrap_or_else(|| ".".to_string());

    let (program, bindings, inputs) = build_workload(&workload)?;

    // Collect every event the pipeline emits while tracing is on.
    let sink = Rc::new(trace::MemorySink::new());
    let guard = trace::set_sink(sink.clone());
    let exe = Compiler::new().compile(&program, &bindings)?;
    let run = exe.run(&inputs)?;
    drop(guard);
    let events = sink.drain();

    print_candidate_table(&events);
    if !exe.diagnostics.diagnostics.is_empty() {
        println!("static analysis:");
        for d in &exe.diagnostics.diagnostics {
            println!("  {}", d.render_line());
        }
        println!();
    }
    println!("{}", exe.report(&run));

    let trace_path = Path::new(&out_dir).join("trace.json");
    let trace_file = File::create(&trace_path)
        .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
    chrome::write_trace(&events, &mut BufWriter::new(trace_file))?;

    let metrics_path = Path::new(&out_dir).join("metrics.json");
    std::fs::write(&metrics_path, exe.metrics(&run).render())
        .map_err(|e| format!("cannot write {}: {e}", metrics_path.display()))?;

    println!("wrote {} ({} events)", trace_path.display(), events.len());
    println!("wrote {}", metrics_path.display());
    Ok(())
}

/// A named workload as (program, size bindings, host inputs).
type Workload = (Program, Bindings, HashMap<multidim_ir::ArrayId, Vec<f64>>);

fn build_workload(name: &str) -> Result<Workload, String> {
    use multidim_workloads::{data, pagerank, sums};
    match name {
        "sumrows" | "sumcols" => {
            let kind = if name == "sumrows" {
                sums::SumKind::Rows
            } else {
                sums::SumKind::Cols
            };
            let (rows, cols) = (512, 1024);
            let (p, rs, cs, m) = sums::sum_program(kind);
            let mut bind = Bindings::new();
            bind.bind(rs, rows as i64);
            bind.bind(cs, cols as i64);
            let inputs = [(m, data::matrix(rows, cols, 42))].into_iter().collect();
            Ok((p, bind, inputs))
        }
        "pagerank" => {
            let g = data::CsrGraph::power_law(2000, 8, 7);
            let mean = (g.edges / g.nodes.max(1)).max(1) as i64;
            let (p, ns, es, row_ptr, col_idx, prev, degree) = pagerank::step_program(mean);
            let mut bind = Bindings::new();
            bind.bind(ns, g.nodes as i64);
            bind.bind(es, g.edges as i64);
            let degrees: Vec<f64> = (0..g.nodes).map(|i| g.degree(i).max(1) as f64).collect();
            let rank = vec![1.0 / g.nodes as f64; g.nodes];
            let inputs = [
                (row_ptr, g.row_ptr.clone()),
                (col_idx, g.col_idx.clone()),
                (prev, rank),
                (degree, degrees),
            ]
            .into_iter()
            .collect();
            Ok((p, bind, inputs))
        }
        other => Err(format!(
            "unknown workload `{other}` (expected sumrows, sumcols, or pagerank)"
        )),
    }
}

/// Reconstruct the "why this mapping won" table from the search events.
fn print_candidate_table(events: &[trace::Event]) {
    let winner = events
        .iter()
        .find(|e| e.cat == "search" && e.name == "selected");
    let best_score = winner
        .and_then(|e| e.get_f64("score"))
        .unwrap_or(f64::NEG_INFINITY);
    let selected = winner.and_then(|e| e.get_str("mapping")).unwrap_or("?");

    println!("candidate mappings (winner first, then by score):");
    println!(
        "  {:<34} {:>8} {:>8} {:>12}  note",
        "mapping", "score", "Δscore", "dop"
    );

    // Scored candidates, winner first then descending score.
    let mut scored: Vec<&trace::Event> = events
        .iter()
        .filter(|e| e.cat == "search" && e.name == "candidate")
        .collect();
    scored.sort_by(|a, b| {
        let (sa, sb) = (
            a.get_f64("score").unwrap_or(0.0),
            b.get_f64("score").unwrap_or(0.0),
        );
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
    });
    for e in &scored {
        let mapping = e.get_str("mapping").unwrap_or("?");
        let score = e.get_f64("score").unwrap_or(0.0);
        let dop = e.get_u64("dop").unwrap_or(0);
        let is_winner = mapping == selected;
        println!(
            "  {:<34} {:>8.1} {:>8.1} {:>12}  {}",
            mapping,
            score,
            score - best_score,
            dop,
            if is_winner { "selected" } else { "outscored" }
        );
    }

    // Hard-pruned candidates with the constraint they violate.
    for e in events
        .iter()
        .filter(|e| e.cat == "search" && e.name == "pruned")
    {
        println!(
            "  {:<34} {:>8} {:>8} {:>12}  pruned: {}",
            e.get_str("mapping").unwrap_or("?"),
            "-",
            "-",
            "-",
            e.get_str("violates").unwrap_or("?")
        );
    }

    // Lowering decisions that shaped the kernels.
    let notes: Vec<String> = events
        .iter()
        .filter(|e| e.cat == "codegen" && e.name != "lower")
        .map(|e| {
            let detail: Vec<String> = e.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}: {}", e.name, detail.join(" "))
        })
        .collect();
    if !notes.is_empty() {
        println!("\nlowering decisions:");
        for n in &notes {
            println!("  {n}");
        }
    }
    println!();
}
