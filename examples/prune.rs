//! Autotune every built-in workload with locality-proof pruning and print
//! how many candidates were discarded without simulation.
//!
//! ```text
//! cargo run --release --example prune
//! ```
//!
//! For each workload: the candidate count, how many were measured, how
//! many were pruned by the proven transaction / launch-overhead lower
//! bound, and the winning cost. The final line totals the sweep; CI runs
//! this as a smoke check that the pruning hook stays live (a change that
//! silently stops pruning would show up as `pruned 0`).

use multidim::prelude::*;
use multidim_mapping::TuneOptions;
use multidim_workloads::catalog::catalog;
use std::collections::HashMap;

fn main() {
    let compiler = Compiler::new().checks(false);
    let mut total_candidates = 0usize;
    let mut total_measured = 0usize;
    let mut total_pruned = 0usize;
    let mut workloads_with_pruning = 0usize;

    println!(
        "{:<24} {:>10} {:>10} {:>8} {:>12}",
        "workload", "candidates", "measured", "pruned", "best (s)"
    );
    for e in catalog() {
        let inputs: HashMap<_, _> = e.inputs.clone();
        match compiler.autotune(&e.program, &e.bindings, &inputs, &TuneOptions::default()) {
            Ok((_, result)) => {
                let candidates = result.measured.len() + result.skipped + result.pruned;
                println!(
                    "{:<24} {:>10} {:>10} {:>8} {:>12.3e}",
                    e.name(),
                    candidates,
                    result.measured.len(),
                    result.pruned,
                    result.best_cost
                );
                total_candidates += candidates;
                total_measured += result.measured.len();
                total_pruned += result.pruned;
                if result.pruned > 0 {
                    workloads_with_pruning += 1;
                }
            }
            Err(err) => {
                println!("{:<24} autotune failed: {err}", e.name());
            }
        }
    }
    println!(
        "total: {total_candidates} candidates, {total_measured} measured, \
         {total_pruned} pruned ({workloads_with_pruning} workload(s) with pruning)"
    );
    if total_pruned == 0 {
        eprintln!("pruning hook appears dead: no candidate was ever pruned");
        std::process::exit(1);
    }
}
