//! Train the Figure 14 Naive Bayes spam classifier and use it to score
//! held-out documents — a small end-to-end ML pipeline on the framework.
//!
//! The two training statistics walk the same document–term matrix in
//! opposite orders; the analysis flips the coalescing dimension per
//! kernel, which no fixed strategy can do.
//!
//! ```text
//! cargo run --release --example spam_classifier
//! ```

use multidim::prelude::*;
use multidim_workloads::apps::naive_bayes;
use multidim_workloads::data;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let (docs, words) = (1024usize, 2048usize);

    // Show the per-kernel mapping decisions.
    let gpu = GpuSpec::tesla_k20c();
    let (p1, d1, w1, _) = naive_bayes::words_per_doc_program();
    let mut b1 = Bindings::new();
    b1.bind(d1, docs as i64);
    b1.bind(w1, words as i64);
    let a1 = multidim_mapping::analyze(&p1, &b1, &gpu);
    println!("words-per-doc mapping : {}", a1.decision);

    let (p2, d2, w2, m2, lab2) = naive_bayes::docs_per_word_program();
    let mut b2 = Bindings::new();
    b2.bind(d2, docs as i64);
    b2.bind(w2, words as i64);
    let a2 = multidim_mapping::analyze(&p2, &b2, &gpu);
    println!(
        "docs-per-word mapping : {}  (note the flipped x!)",
        a2.decision
    );

    // Train: per-word spam and ham counts.
    let (m, labels) = data::document_matrix(docs, words, 0.08, 31);
    let spam_docs: f64 = labels.iter().sum();
    let exe = Compiler::new().compile(&p2, &b2)?;
    let i2: HashMap<_, _> = [(m2, m.clone()), (lab2, labels.clone())]
        .into_iter()
        .collect();
    let spam_counts = exe.run(&i2)?.output(p2.output.unwrap()).to_vec();
    let ham_labels: Vec<f64> = labels.iter().map(|l| 1.0 - l).collect();
    let i3: HashMap<_, _> = [(m2, m.clone()), (lab2, ham_labels)].into_iter().collect();
    let ham_counts = exe.run(&i3)?.output(p2.output.unwrap()).to_vec();
    println!("trained on {docs} docs ({spam_docs} spam), {words} words");

    // Classify a few held-out documents with log-likelihood ratios.
    let (test, test_labels) = data::document_matrix(64, words, 0.08, 99);
    let prior = (spam_docs / docs as f64).ln() - (1.0 - spam_docs / docs as f64).ln();
    let mut correct = 0;
    for d in 0..64 {
        let mut llr = prior;
        for w in 0..words {
            if test[d * words + w] != 0.0 {
                let ps = (spam_counts[w] + 1.0) / (spam_docs + 2.0);
                let ph = (ham_counts[w] + 1.0) / (docs as f64 - spam_docs + 2.0);
                llr += (ps / ph).ln();
            }
        }
        let spam = llr > 0.0;
        if spam == (test_labels[d] != 0.0) {
            correct += 1;
        }
    }
    println!(
        "held-out agreement: {correct}/64 (random features ≈ chance; the point is the pipeline)"
    );
    Ok(())
}
