//! Explore the mapping space of a program: enumerate every hard-valid
//! candidate, score it, simulate it, and compare the analysis's pick
//! against the empirically best mapping (a miniature Figure 17).
//!
//! ```text
//! cargo run --release --example mapping_explorer [HEIGHT] [WIDTH]
//! ```

use multidim::prelude::*;
use multidim_mapping::{enumerate_scored, Weights};
use multidim_workloads::rodinia::{mandelbrot, Traversal};
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let h: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);
    let w: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);

    let (p, hs, ws) = mandelbrot::program(Traversal::RowMajor);
    let mut bind = Bindings::new();
    bind.bind(hs, h as i64);
    bind.bind(ws, w as i64);
    let gpu = GpuSpec::tesla_k20c();

    let candidates = enumerate_scored(&p, &bind, &gpu, &Weights::default());
    println!(
        "exploring {} candidates on a {h}x{w} Mandelbrot…",
        candidates.len()
    );

    let compiler = Compiler::new();
    let inputs: HashMap<_, _> = HashMap::new();
    let mut results = Vec::new();
    for cand in candidates {
        if let Ok(exe) = compiler.compile_with_mapping(&p, &bind, cand.mapping.clone()) {
            if let Ok(report) = exe.run(&inputs) {
                results.push((cand.normalized_score, report.gpu_seconds, cand.mapping));
            }
        }
    }
    results.sort_by(|a, b| a.1.total_cmp(&b.1));
    let best = results[0].1;

    println!("\nfastest five:");
    for (score, t, m) in results.iter().take(5) {
        println!("  {:6.2} µs  score {score:5.2}  {m}", t * 1e6);
    }
    println!("slowest three:");
    for (score, t, m) in results.iter().rev().take(3) {
        println!("  {:6.2} µs  score {score:5.2}  {m}", t * 1e6);
    }

    let analysis = multidim_mapping::analyze(&p, &bind, &gpu);
    let exe = compiler.compile(&p, &bind)?;
    let t = exe.run(&inputs)?.gpu_seconds;
    println!(
        "\nanalysis picked {} -> {:.2} µs, {:.2}x of empirical best",
        analysis.decision,
        t * 1e6,
        t / best
    );
    Ok(())
}
