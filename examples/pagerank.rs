//! PageRank over a synthetic power-law graph — the paper's Figure 5
//! motivating example, end to end.
//!
//! The inner pattern ranges over each node's neighbor list, whose size is
//! only known at run time: the analysis is forced to `Span(all)` on the
//! inner level and parallelizes node × neighbor work, which is exactly
//! how it subsumes Hong et al.'s warp-based mapping for skewed graphs.
//!
//! ```text
//! cargo run --release --example pagerank
//! ```

use multidim::prelude::Strategy;
use multidim_workloads::data::CsrGraph;
use multidim_workloads::pagerank;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let graph = CsrGraph::power_law(4096, 8, 42);
    println!(
        "graph: {} nodes, {} edges, max degree {}",
        graph.nodes,
        graph.edges,
        (0..graph.nodes).map(|n| graph.degree(n)).max().unwrap_or(0)
    );

    for strategy in [Strategy::MultiDim, Strategy::OneD, Strategy::WarpBased] {
        let outcome = pagerank::run_on(strategy, &graph, 5)?;
        println!(
            "{strategy:<22} 5 iterations in {:8.3} ms (checksum {:.6})",
            outcome.gpu_seconds * 1e3,
            outcome.checksum
        );
    }

    // Show the top-ranked nodes.
    let outcome = pagerank::run_on(Strategy::MultiDim, &graph, 10)?;
    let (p, ..) = pagerank::step_program(8);
    let rank = &outcome.outputs[&p.output.expect("map output")];
    let mut ranked: Vec<(usize, f64)> = rank.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop 5 nodes by rank:");
    for (node, score) in ranked.iter().take(5) {
        println!(
            "  node {node:<6} rank {score:.6} (degree {})",
            graph.degree(*node)
        );
    }
    Ok(())
}
