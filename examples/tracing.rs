//! Demo of the closed observability loop: end-to-end request traces with
//! tail sampling, exemplar-linked latency histograms, and burn-rate
//! alerts — all on a live 2-shard front door.
//!
//! ```text
//! cargo run --release --example tracing
//! ```
//!
//! The run installs a process-wide tail-sampling trace store, drives a
//! few bursts of traffic through deliberately tight shard queues (so
//! some requests shed and some spill off their home shard), and then
//! walks the loop end to end: sampler accounting, the p99 exemplar
//! resolved from the latency histogram back to its stored trace (printed
//! as the stitched span tree), and the alert engine's transition log.

use multidim::Compiler;
use multidim_engine::{EngineConfig, Request};
use multidim_obs::{
    AlertEngine, AlertRule, AlertSeverity, BurnObjective, BurnRateRule, Registry, Slo, SloTracker,
};
use multidim_serve::{FrontDoor, FrontDoorConfig, QuotaPolicy, ServeError};
use multidim_trace::{install_store, trace_id_hex, SpanRecord, TailSamplerConfig, TraceStore};
use multidim_workloads::catalog::{catalog, CatalogEntry};
use std::error::Error;
use std::sync::Arc;

fn request(e: &CatalogEntry) -> Request {
    Request::new(e.program.clone(), e.bindings.clone(), e.inputs.clone())
}

/// Print a stored trace as an indented tree, children under parents in
/// start order.
fn print_tree(spans: &[SpanRecord], parent: Option<u64>, depth: usize) {
    let mut children: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent == parent).collect();
    children.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    for span in children {
        println!(
            "  {:indent$}{}/{} {:.2} ms",
            "",
            span.cat,
            span.name,
            span.dur_us / 1e3,
            indent = depth * 2
        );
        print_tree(spans, Some(span.span_id), depth + 1);
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    // Tail sampler: keep every bad or slow (≥ 5 ms) trace, a quarter of
    // the boring ones. The guard uninstalls the store on drop.
    let store = Arc::new(TraceStore::new(TailSamplerConfig {
        latency_threshold: 0.005,
        keep_fraction: 0.25,
        ..TailSamplerConfig::default()
    }));
    let _guard = install_store(store.clone());

    // Tight queues on purpose: burst submissions overflow them, so the
    // demo produces sheds (kept traces) and spills (spill spans).
    let door = FrontDoor::new(
        Compiler::new(),
        FrontDoorConfig {
            shards: 2,
            shard: EngineConfig {
                workers: 1,
                queue_capacity: 2,
                ..EngineConfig::default()
            },
            quota: QuotaPolicy::default(),
            ..FrontDoorConfig::default()
        },
    );

    let registry = Registry::new();
    let latency = registry.histogram(
        "demo_request_seconds",
        "end-to-end latency of served requests (client view)",
    );
    let tracker = SloTracker::new(Slo::new("demo", 0.99, 0.050), 16);
    let mut alerts = AlertEngine::new(vec![AlertRule::Burn(BurnRateRule {
        name: "demo-availability-burn".to_string(),
        severity: AlertSeverity::Ticket,
        slo: "demo".to_string(),
        objective: BurnObjective::Availability,
        fast_windows: 2,
        slow_windows: 8,
        threshold: 6.0,
    })]);

    let entries = catalog();
    let (mut attempted, mut shed, mut spilled) = (0usize, 0usize, 0usize);
    for round in 0..3 {
        // Submit the whole burst before waiting: the queues of two must
        // overflow, and overflow on the home shard spills once.
        let mut tickets = Vec::new();
        for e in entries.iter().take(12) {
            attempted += 1;
            match door.submit("demo", request(e)) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { .. }) => {
                    shed += 1;
                    tracker.record(0.0, false);
                }
                Err(e) => return Err(format!("unexpected rejection: {e}").into()),
            }
        }
        for t in tickets {
            let served = t.wait()?;
            spilled += usize::from(served.spilled);
            let secs = (served.response.queue_wait + served.response.service_time).as_secs_f64();
            tracker.record(secs, true);
            // Publish an exemplar only when the trace was kept, so every
            // id the histogram links to actually resolves.
            match served.response.trace.filter(|c| store.contains(c.trace_id)) {
                Some(ctx) => latency.record_with_exemplar(secs, ctx.trace_id),
                None => latency.record(secs),
            }
        }
        alerts.evaluate(Some(&registry), &[("demo", &tracker)]);
        tracker.rotate();
        println!("round {round}: {attempted} attempted, {shed} shed, {spilled} spilled so far");
    }
    door.shutdown();

    let stats = store.stats();
    println!(
        "\nsampler: kept {} of {} finished ({} bad kept outright, {} boring dropped)",
        stats.kept, stats.finished, stats.finished_bad, stats.dropped_sampled
    );

    // The closed loop: tail exemplar -> trace id -> stored span tree.
    let tail = registry.tail_exemplars("demo_request_seconds", 1);
    let exemplar = tail.first().ok_or("no exemplar recorded")?;
    let stored = store
        .lookup(exemplar.trace_id)
        .ok_or("published exemplar must resolve")?;
    println!(
        "\nslowest exemplar {} ({:.2} ms) resolves to outcome `{}`:",
        trace_id_hex(exemplar.trace_id),
        exemplar.value * 1e3,
        stored.outcome.as_str()
    );
    print_tree(&stored.spans, None, 0);

    println!("\nalert log:");
    if alerts.log().is_empty() {
        println!("  (no transitions)");
    }
    for event in alerts.log() {
        println!("  {}", event.render_line());
    }
    Ok(())
}
