//! Quickstart: write a nested pattern program, let the analysis map it,
//! inspect the decision and the generated CUDA, and run it on the
//! simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use multidim::prelude::*;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // sumRows from Figure 1 of the paper:
    //   sumRows = m mapRows { r => r reduce { (a, b) => a + b } }
    let mut b = ProgramBuilder::new("sumRows");
    let r = b.sym("R");
    let c = b.sym("C");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
    let root = b.map(Size::sym(r), |b, row| {
        b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
            b.read(m, &[row.into(), col.into()])
        })
    });
    let program = b.finish_map(root, "sums", ScalarKind::F32)?;

    // Bind the launch sizes and compile: analysis -> mapping -> kernels.
    let (rows, cols) = (2048usize, 4096usize);
    let mut bind = Bindings::new();
    bind.bind(r, rows as i64);
    bind.bind(c, cols as i64);
    let exe = Compiler::new().compile(&program, &bind)?;

    println!("chosen mapping: {}", exe.mapping);
    if let Some(analysis) = &exe.analysis {
        println!(
            "score {:.3} (normalized {:.3}), DOP {}, {} candidates searched",
            analysis.score, analysis.normalized_score, analysis.dop, analysis.candidates
        );
    }
    println!("\n--- generated CUDA ---\n{}", exe.cuda_source());

    // Execute on the simulated Tesla K20c.
    let data: Vec<f64> = (0..rows * cols).map(|i| (i % 10) as f64).collect();
    let inputs: HashMap<_, _> = [(m, data)].into_iter().collect();
    let report = exe.run(&inputs)?;
    let sums = report.output(program.output.expect("map output"));
    println!(
        "row 0 sum = {}, row {} sum = {}",
        sums[0],
        rows - 1,
        sums[rows - 1]
    );
    println!("simulated GPU time: {:.3} ms", report.gpu_seconds * 1e3);

    // Compare against the fixed 1D strategy the paper uses as a baseline.
    let exe_1d = Compiler::new()
        .strategy(Strategy::OneD)
        .compile(&program, &bind)?;
    let report_1d = exe_1d.run(&inputs)?;
    println!(
        "1D mapping time: {:.3} ms ({:.1}x slower)",
        report_1d.gpu_seconds * 1e3,
        report_1d.gpu_seconds / report.gpu_seconds
    );
    Ok(())
}
